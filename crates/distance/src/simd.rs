//! SIMD row kernels for the DP distances (DESIGN.md §13).
//!
//! The dynamic programs of EGED/DTW spend almost all of their time in two
//! shapes of work per lattice row:
//!
//! 1. *ground-distance rows* — `dist(aᵢ, bⱼ)` for a fixed `aᵢ` over all
//!    `j` (and elementwise pairs for the Lp norms);
//! 2. *combine rows* — the `min` of the two terms that depend only on the
//!    **previous** row (`replace`, `delete`). The third term (`add`) carries
//!    a loop dependency on the current row and stays scalar; splitting the
//!    recurrence this way preserves the exact association
//!    `(replace.min(delete)).min(add)` of the scalar kernel, so results are
//!    bit-identical (IEEE add/sub/mul/min are exact deterministic
//!    operations regardless of lane count).
//!
//! Lanes: 4×f64 AVX when the CPU reports it, else 2×f64 SSE2 (part of the
//! x86_64 baseline), 2×f64 NEON on aarch64, and a plain scalar loop
//! elsewhere — which also serves as the tail handler for the remainder
//! elements on every architecture.
//!
//! NaN caveat: `_mm_min_pd`/`vminq_f64` propagate NaN from either operand,
//! while `f64::min` prefers the non-NaN one. All DP inputs are
//! non-negative sums of ground distances, so NaN can only appear if a
//! `SeqValue::dist` implementation produces one — outside the metric
//! contract. Finite inputs round identically on every path.
//!
//! The [`SCALAR_ENV`] hatch (`STRG_SCALAR=1`) routes every caller back to
//! the original scalar kernels, in the style of `STRG_NAIVE_SEGMENT`; the
//! equivalence suites diff the two modes byte-for-byte.

/// Environment variable that disables the SIMD kernels (the escape hatch
/// for equivalence testing): set to `1` (or any non-empty value other than
/// `0`) to force the original scalar DP loops everywhere.
pub const SCALAR_ENV: &str = "STRG_SCALAR";

/// Whether the vectorized kernels are active (i.e. [`SCALAR_ENV`] is
/// unset). Re-read on every call so tests can toggle the hatch
/// mid-process, like `lower_bounds_enabled`.
pub fn simd_enabled() -> bool {
    match std::env::var(SCALAR_ENV) {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// `out[i] = (q - xs[i]).abs()` — the f64 ground-distance row.
pub(crate) fn dist_abs_many(q: f64, xs: &[f64], out: &mut [f64]) {
    debug_assert_eq!(xs.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx_available() {
            // SAFETY: AVX support verified at runtime; slices equal length.
            unsafe { x86::dist_abs_many_avx(q, xs, out) };
        } else {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::dist_abs_many_sse2(q, xs, out) };
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::dist_abs_many_neon(q, xs, out) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::dist_abs_many(q, xs, out)
}

/// `out[i] = (a[i] - b[i]).abs()` — elementwise f64 pair distances (Lp).
pub(crate) fn dist_abs_pairs(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert!(a.len() == out.len() && b.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx_available() {
            // SAFETY: AVX support verified at runtime; slices equal length.
            unsafe { x86::dist_abs_pairs_avx(a, b, out) };
        } else {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::dist_abs_pairs_sse2(a, b, out) };
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::dist_abs_pairs_neon(a, b, out) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::dist_abs_pairs(a, b, out)
}

/// EGED combine with a constant delete cost:
/// `out[j] = (prev[j] + sub[j]).min(prev[j + 1] + del)`.
///
/// `prev` is one longer than `out`/`sub` (the DP row has `n + 1` cells).
pub(crate) fn combine_const(prev: &[f64], sub: &[f64], del: f64, out: &mut [f64]) {
    debug_assert!(prev.len() == out.len() + 1 && sub.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx_available() {
            // SAFETY: AVX support verified at runtime; lengths asserted.
            unsafe { x86::combine_const_avx(prev, sub, del, out) };
        } else {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::combine_const_sse2(prev, sub, del, out) };
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::combine_const_neon(prev, sub, del, out) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::combine_const(prev, sub, del, out)
}

/// EGED combine with per-cell delete costs:
/// `out[j] = (prev[j] + sub[j]).min(prev[j + 1] + del[j])`.
pub(crate) fn combine_rows(prev: &[f64], sub: &[f64], del: &[f64], out: &mut [f64]) {
    debug_assert!(prev.len() == out.len() + 1 && sub.len() == out.len() && del.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx_available() {
            // SAFETY: AVX support verified at runtime; lengths asserted.
            unsafe { x86::combine_rows_avx(prev, sub, del, out) };
        } else {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::combine_rows_sse2(prev, sub, del, out) };
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::combine_rows_neon(prev, sub, del, out) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::combine_rows(prev, sub, del, out)
}

/// DTW shifted minimum: `out[j] = prev[j].min(prev[j + 1])`.
pub(crate) fn min_shift(prev: &[f64], out: &mut [f64]) {
    debug_assert_eq!(prev.len(), out.len() + 1);
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx_available() {
            // SAFETY: AVX support verified at runtime; lengths asserted.
            unsafe { x86::min_shift_avx(prev, out) };
        } else {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::min_shift_sse2(prev, out) };
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::min_shift_neon(prev, out) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::min_shift(prev, out)
}

/// Scalar reference kernels — the portable fallback and the tail handler
/// the vector bodies delegate their remainder elements to.
mod scalar {
    pub(super) fn dist_abs_many(q: f64, xs: &[f64], out: &mut [f64]) {
        for (x, d) in xs.iter().zip(out.iter_mut()) {
            *d = (q - x).abs();
        }
    }

    pub(super) fn dist_abs_pairs(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((x, y), d) in a.iter().zip(b).zip(out.iter_mut()) {
            *d = (x - y).abs();
        }
    }

    pub(super) fn combine_const(prev: &[f64], sub: &[f64], del: f64, out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = (prev[j] + sub[j]).min(prev[j + 1] + del);
        }
    }

    pub(super) fn combine_rows(prev: &[f64], sub: &[f64], del: &[f64], out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = (prev[j] + sub[j]).min(prev[j + 1] + del[j]);
        }
    }

    pub(super) fn min_shift(prev: &[f64], out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = prev[j].min(prev[j + 1]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use std::arch::x86_64::*;

    pub(super) fn avx_available() -> bool {
        // std caches the CPUID probe behind an atomic, so this is a load.
        is_x86_feature_detected!("avx")
    }

    /// Sign-bit mask for `abs` via ANDNOT — exact, same bits as `f64::abs`.
    const SIGN: f64 = -0.0;

    pub(super) unsafe fn dist_abs_many_sse2(q: f64, xs: &[f64], out: &mut [f64]) {
        let n = out.len();
        let qv = _mm_set1_pd(q);
        let sign = _mm_set1_pd(SIGN);
        let mut j = 0;
        while j + 2 <= n {
            let x = _mm_loadu_pd(xs.as_ptr().add(j));
            let d = _mm_andnot_pd(sign, _mm_sub_pd(qv, x));
            _mm_storeu_pd(out.as_mut_ptr().add(j), d);
            j += 2;
        }
        scalar::dist_abs_many(q, &xs[j..], &mut out[j..]);
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn dist_abs_many_avx(q: f64, xs: &[f64], out: &mut [f64]) {
        let n = out.len();
        let qv = _mm256_set1_pd(q);
        let sign = _mm256_set1_pd(SIGN);
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(j));
            let d = _mm256_andnot_pd(sign, _mm256_sub_pd(qv, x));
            _mm256_storeu_pd(out.as_mut_ptr().add(j), d);
            j += 4;
        }
        scalar::dist_abs_many(q, &xs[j..], &mut out[j..]);
    }

    pub(super) unsafe fn dist_abs_pairs_sse2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let sign = _mm_set1_pd(SIGN);
        let mut j = 0;
        while j + 2 <= n {
            let x = _mm_loadu_pd(a.as_ptr().add(j));
            let y = _mm_loadu_pd(b.as_ptr().add(j));
            let d = _mm_andnot_pd(sign, _mm_sub_pd(x, y));
            _mm_storeu_pd(out.as_mut_ptr().add(j), d);
            j += 2;
        }
        scalar::dist_abs_pairs(&a[j..], &b[j..], &mut out[j..]);
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn dist_abs_pairs_avx(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let sign = _mm256_set1_pd(SIGN);
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_pd(a.as_ptr().add(j));
            let y = _mm256_loadu_pd(b.as_ptr().add(j));
            let d = _mm256_andnot_pd(sign, _mm256_sub_pd(x, y));
            _mm256_storeu_pd(out.as_mut_ptr().add(j), d);
            j += 4;
        }
        scalar::dist_abs_pairs(&a[j..], &b[j..], &mut out[j..]);
    }

    pub(super) unsafe fn combine_const_sse2(prev: &[f64], sub: &[f64], del: f64, out: &mut [f64]) {
        let n = out.len();
        let dv = _mm_set1_pd(del);
        let mut j = 0;
        while j + 2 <= n {
            let p0 = _mm_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm_loadu_pd(prev.as_ptr().add(j + 1));
            let s = _mm_loadu_pd(sub.as_ptr().add(j));
            let replace = _mm_add_pd(p0, s);
            let delete = _mm_add_pd(p1, dv);
            _mm_storeu_pd(out.as_mut_ptr().add(j), _mm_min_pd(replace, delete));
            j += 2;
        }
        scalar::combine_const(&prev[j..], &sub[j..], del, &mut out[j..]);
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn combine_const_avx(prev: &[f64], sub: &[f64], del: f64, out: &mut [f64]) {
        let n = out.len();
        let dv = _mm256_set1_pd(del);
        let mut j = 0;
        while j + 4 <= n {
            let p0 = _mm256_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm256_loadu_pd(prev.as_ptr().add(j + 1));
            let s = _mm256_loadu_pd(sub.as_ptr().add(j));
            let replace = _mm256_add_pd(p0, s);
            let delete = _mm256_add_pd(p1, dv);
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_min_pd(replace, delete));
            j += 4;
        }
        scalar::combine_const(&prev[j..], &sub[j..], del, &mut out[j..]);
    }

    pub(super) unsafe fn combine_rows_sse2(
        prev: &[f64],
        sub: &[f64],
        del: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let mut j = 0;
        while j + 2 <= n {
            let p0 = _mm_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm_loadu_pd(prev.as_ptr().add(j + 1));
            let s = _mm_loadu_pd(sub.as_ptr().add(j));
            let d = _mm_loadu_pd(del.as_ptr().add(j));
            let replace = _mm_add_pd(p0, s);
            let delete = _mm_add_pd(p1, d);
            _mm_storeu_pd(out.as_mut_ptr().add(j), _mm_min_pd(replace, delete));
            j += 2;
        }
        scalar::combine_rows(&prev[j..], &sub[j..], &del[j..], &mut out[j..]);
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn combine_rows_avx(prev: &[f64], sub: &[f64], del: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + 4 <= n {
            let p0 = _mm256_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm256_loadu_pd(prev.as_ptr().add(j + 1));
            let s = _mm256_loadu_pd(sub.as_ptr().add(j));
            let d = _mm256_loadu_pd(del.as_ptr().add(j));
            let replace = _mm256_add_pd(p0, s);
            let delete = _mm256_add_pd(p1, d);
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_min_pd(replace, delete));
            j += 4;
        }
        scalar::combine_rows(&prev[j..], &sub[j..], &del[j..], &mut out[j..]);
    }

    pub(super) unsafe fn min_shift_sse2(prev: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + 2 <= n {
            let p0 = _mm_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm_loadu_pd(prev.as_ptr().add(j + 1));
            _mm_storeu_pd(out.as_mut_ptr().add(j), _mm_min_pd(p0, p1));
            j += 2;
        }
        scalar::min_shift(&prev[j..], &mut out[j..]);
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn min_shift_avx(prev: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + 4 <= n {
            let p0 = _mm256_loadu_pd(prev.as_ptr().add(j));
            let p1 = _mm256_loadu_pd(prev.as_ptr().add(j + 1));
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_min_pd(p0, p1));
            j += 4;
        }
        scalar::min_shift(&prev[j..], &mut out[j..]);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::scalar;
    use std::arch::aarch64::*;

    pub(super) unsafe fn dist_abs_many_neon(q: f64, xs: &[f64], out: &mut [f64]) {
        let n = out.len();
        let qv = vdupq_n_f64(q);
        let mut j = 0;
        while j + 2 <= n {
            let x = vld1q_f64(xs.as_ptr().add(j));
            vst1q_f64(out.as_mut_ptr().add(j), vabsq_f64(vsubq_f64(qv, x)));
            j += 2;
        }
        scalar::dist_abs_many(q, &xs[j..], &mut out[j..]);
    }

    pub(super) unsafe fn dist_abs_pairs_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + 2 <= n {
            let x = vld1q_f64(a.as_ptr().add(j));
            let y = vld1q_f64(b.as_ptr().add(j));
            vst1q_f64(out.as_mut_ptr().add(j), vabsq_f64(vsubq_f64(x, y)));
            j += 2;
        }
        scalar::dist_abs_pairs(&a[j..], &b[j..], &mut out[j..]);
    }

    pub(super) unsafe fn combine_const_neon(prev: &[f64], sub: &[f64], del: f64, out: &mut [f64]) {
        let n = out.len();
        let dv = vdupq_n_f64(del);
        let mut j = 0;
        while j + 2 <= n {
            let p0 = vld1q_f64(prev.as_ptr().add(j));
            let p1 = vld1q_f64(prev.as_ptr().add(j + 1));
            let s = vld1q_f64(sub.as_ptr().add(j));
            let replace = vaddq_f64(p0, s);
            let delete = vaddq_f64(p1, dv);
            vst1q_f64(out.as_mut_ptr().add(j), vminq_f64(replace, delete));
            j += 2;
        }
        scalar::combine_const(&prev[j..], &sub[j..], del, &mut out[j..]);
    }

    pub(super) unsafe fn combine_rows_neon(
        prev: &[f64],
        sub: &[f64],
        del: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let mut j = 0;
        while j + 2 <= n {
            let p0 = vld1q_f64(prev.as_ptr().add(j));
            let p1 = vld1q_f64(prev.as_ptr().add(j + 1));
            let s = vld1q_f64(sub.as_ptr().add(j));
            let d = vld1q_f64(del.as_ptr().add(j));
            let replace = vaddq_f64(p0, s);
            let delete = vaddq_f64(p1, d);
            vst1q_f64(out.as_mut_ptr().add(j), vminq_f64(replace, delete));
            j += 2;
        }
        scalar::combine_rows(&prev[j..], &sub[j..], &del[j..], &mut out[j..]);
    }

    pub(super) unsafe fn min_shift_neon(prev: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut j = 0;
        while j + 2 <= n {
            let p0 = vld1q_f64(prev.as_ptr().add(j));
            let p1 = vld1q_f64(prev.as_ptr().add(j + 1));
            vst1q_f64(out.as_mut_ptr().add(j), vminq_f64(p0, p1));
            j += 2;
        }
        scalar::min_shift(&prev[j..], &mut out[j..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.73 - 3.1).abs() * 1.37)
            .collect()
    }

    #[test]
    fn dist_abs_many_matches_scalar_at_every_length() {
        for n in 0..35 {
            let xs = vals(n);
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            dist_abs_many(2.25, &xs, &mut fast);
            scalar::dist_abs_many(2.25, &xs, &mut slow);
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn dist_abs_pairs_matches_scalar_at_every_length() {
        for n in 0..35 {
            let a = vals(n);
            let b: Vec<f64> = a.iter().map(|x| 7.5 - x).collect();
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            dist_abs_pairs(&a, &b, &mut fast);
            scalar::dist_abs_pairs(&a, &b, &mut slow);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn combine_kernels_match_scalar_at_every_length() {
        for n in 0..35 {
            let prev = vals(n + 1);
            let sub = vals(n);
            let del: Vec<f64> = sub.iter().map(|x| x * 0.31 + 0.07).collect();
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];
            combine_const(&prev, &sub, 0.42, &mut fast);
            scalar::combine_const(&prev, &sub, 0.42, &mut slow);
            assert_eq!(fast, slow, "combine_const n={n}");
            combine_rows(&prev, &sub, &del, &mut fast);
            scalar::combine_rows(&prev, &sub, &del, &mut slow);
            assert_eq!(fast, slow, "combine_rows n={n}");
            min_shift(&prev, &mut fast);
            scalar::min_shift(&prev, &mut slow);
            assert_eq!(fast, slow, "min_shift n={n}");
        }
    }

    #[test]
    fn hatch_parses() {
        if std::env::var(SCALAR_ENV).is_err() {
            assert!(simd_enabled());
        }
    }
}
