//! Dynamic Time Warping (Gish & Ng [11]), one of the two baseline distances
//! the paper compares EGED against in Figure 5.

use crate::traits::SequenceDistance;
use crate::value::SeqValue;

/// Classic unconstrained DTW: minimum total ground-distance over monotone
/// alignments of the two sequences. Non-metric (fails the triangle
/// inequality), so it may drive clustering but not the index.
#[derive(Copy, Clone, Debug, Default)]
pub struct Dtw;

/// Cutoff-bounded DTW: `Some(d)` iff `d <= cutoff` (with `d` bit-identical
/// to the unbounded DP), `None` iff the distance exceeds `cutoff`.
///
/// Same row-minimum argument as EGED: warping costs are non-negative, every
/// cell extends some cell of the previous or current row, so the final value
/// is `>=` the minimum of any completed row.
pub(crate) fn dtw_upto<V: SeqValue>(a: &[V], b: &[V], cutoff: f64) -> Option<f64> {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // Conventional: distance to an empty sequence is the sum of
        // ground distances to the origin, so that the function stays
        // total on degenerate inputs.
        let rest = if m == 0 { b } else { a };
        let d: f64 = rest.iter().map(|v| v.dist(&V::origin())).sum();
        return if d <= cutoff { Some(d) } else { None };
    }
    if crate::simd::simd_enabled() {
        crate::scratch::with_dp_scratch(|s| dtw_upto_vector(a, b, cutoff, s))
    } else {
        dtw_upto_scalar(a, b, cutoff)
    }
}

/// The original scalar DP (the `STRG_SCALAR=1` reference path).
fn dtw_upto_scalar<V: SeqValue>(a: &[V], b: &[V], cutoff: f64) -> Option<f64> {
    let m = a.len();
    let n = b.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        cur[0] = f64::INFINITY;
        let mut row_min = f64::INFINITY;
        for j in 1..=n {
            let cost = a[i - 1].dist(&b[j - 1]);
            let best = prev[j - 1].min(prev[j]).min(cur[j - 1]);
            cur[j] = cost + best;
            row_min = row_min.min(cur[j]);
        }
        if row_min > cutoff {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    if d <= cutoff {
        Some(d)
    } else {
        None
    }
}

/// Vectorized DTW over arena rows: the ground-distance row fans out through
/// [`SeqValue::dist_many`], `prev[j-1].min(prev[j])` computes in SIMD
/// lanes, and the loop-carried `.min(cur[j-1])` plus the cost addition run
/// in a scalar prefix pass — the same `(prev[j-1].min(prev[j])).min(cur[j-1])`
/// association as the scalar kernel, so values and abandon decisions are
/// bit-identical (DESIGN.md §13).
fn dtw_upto_vector<V: SeqValue>(
    a: &[V],
    b: &[V],
    cutoff: f64,
    scratch: &mut crate::scratch::DpScratch,
) -> Option<f64> {
    let m = a.len();
    let n = b.len();
    let (mut prev, mut cur, sub, _del, _add) = scratch.rows(n);
    prev.fill(f64::INFINITY);
    prev[0] = 0.0;
    for i in 1..=m {
        V::dist_many(&a[i - 1], b, sub);
        crate::simd::min_shift(prev, &mut cur[1..]);
        cur[0] = f64::INFINITY;
        let mut row_min = f64::INFINITY;
        for j in 1..=n {
            let c = sub[j - 1] + cur[j].min(cur[j - 1]);
            cur[j] = c;
            row_min = row_min.min(c);
        }
        if row_min > cutoff {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    if d <= cutoff {
        Some(d)
    } else {
        None
    }
}

impl<V: SeqValue> SequenceDistance<V> for Dtw {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        dtw_upto(a, b, f64::INFINITY).expect("infinite cutoff never abandons")
    }

    fn name(&self) -> &'static str {
        "DTW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtw(a: &[f64], b: &[f64]) -> f64 {
        SequenceDistance::distance(&Dtw, a, b)
    }

    #[test]
    fn identical_is_zero() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&s, &s), 0.0);
    }

    #[test]
    fn time_shift_is_free() {
        // DTW absorbs repeated samples at zero cost.
        assert_eq!(dtw(&[1.0, 5.0, 9.0], &[1.0, 5.0, 5.0, 5.0, 9.0]), 0.0);
    }

    #[test]
    fn simple_offset() {
        // Offset sequences: the optimal warping matches 1->2 (1), 2->2 (0),
        // 3->3 (0), 3->4 (1) for a total of 2 — less than the pointwise 3.
        assert_eq!(dtw(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]), 2.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 0.5];
        let b = [1.0, 1.0];
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
    }

    #[test]
    fn violates_triangle_inequality() {
        // The well-known failure: DTW(r,t) > DTW(r,s) + DTW(s,t) for these.
        let r = [0.0];
        let s = [0.0, 2.0];
        let t = [0.0, 2.0, 2.0, 2.0];
        let rt = dtw(&r, &t);
        let rs = dtw(&r, &s);
        let st = dtw(&s, &t);
        assert!(rt > rs + st, "{rt} vs {rs} + {st}");
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert_eq!(dtw(&[], &[3.0, 4.0]), 7.0);
        assert_eq!(dtw(&[3.0], &[]), 3.0);
    }

    #[test]
    fn vector_path_matches_scalar_bitwise() {
        for (m, n) in [(1, 1), (4, 9), (21, 13), (16, 16)] {
            let a: Vec<f64> = (0..m).map(|i| (i as f64 * 1.3).sin() * 6.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos() * 5.0).collect();
            for cutoff in [f64::INFINITY, 40.0, 5.0, 0.5, 0.0] {
                let s = dtw_upto_scalar(&a, &b, cutoff);
                let v = crate::scratch::with_dp_scratch(|sc| dtw_upto_vector(&a, &b, cutoff, sc));
                assert_eq!(
                    s.map(f64::to_bits),
                    v.map(f64::to_bits),
                    "m={m} n={n} cutoff={cutoff}"
                );
            }
        }
    }
}
