//! Thread-local DP-row arenas (DESIGN.md §13).
//!
//! Every `distance_upto` call used to allocate its two lattice rows; under
//! a query that refines hundreds of candidates that is the hot allocation
//! of the whole search path. The vectorized kernels instead borrow a
//! per-thread [`DpScratch`] whose rows grow monotonically and are reused
//! across calls — after warm-up, steady-state distance evaluations perform
//! zero heap allocations (proven by `tests/query_alloc.rs`).
//!
//! The arena is keyed by thread, so the long-lived workers of the serve
//! pool and of `strg_parallel::par_map` each converge on their own
//! high-water-mark rows. Reentrancy (a ground distance that itself calls a
//! sequence distance) falls back to a fresh local arena instead of
//! panicking on the `RefCell`.

use std::cell::RefCell;

/// Grow-only row buffers for one in-flight DP evaluation.
pub(crate) struct DpScratch {
    prev: Vec<f64>,
    cur: Vec<f64>,
    sub: Vec<f64>,
    del: Vec<f64>,
    add: Vec<f64>,
}

impl DpScratch {
    const fn empty() -> Self {
        Self {
            prev: Vec::new(),
            cur: Vec::new(),
            sub: Vec::new(),
            del: Vec::new(),
            add: Vec::new(),
        }
    }

    /// Borrows the five row buffers sized for an inner dimension of `n`:
    /// `prev`/`cur` hold the `n + 1` lattice cells, `sub`/`del`/`add` one
    /// per-column cost each. Contents are unspecified on entry — every DP
    /// writes each cell before reading it.
    #[allow(clippy::type_complexity)]
    pub(crate) fn rows(
        &mut self,
        n: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        fn take(v: &mut Vec<f64>, len: usize) -> &mut [f64] {
            if v.len() < len {
                v.resize(len, 0.0);
            }
            &mut v[..len]
        }
        (
            take(&mut self.prev, n + 1),
            take(&mut self.cur, n + 1),
            take(&mut self.sub, n),
            take(&mut self.del, n),
            take(&mut self.add, n),
        )
    }
}

thread_local! {
    static DP_SCRATCH: RefCell<DpScratch> = const { RefCell::new(DpScratch::empty()) };
}

/// Runs `f` with this thread's DP arena; reentrant calls get a fresh local
/// arena (correct, just unpooled) rather than a borrow panic.
pub(crate) fn with_dp_scratch<R>(f: impl FnOnce(&mut DpScratch) -> R) -> R {
    DP_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut DpScratch::empty()),
    })
}
