//! Extended Graph Edit Distance (Definition 9, Theorem 2).
//!
//! EGED computes the minimum cost of node edit operations (replace, delete,
//! add) transforming one Object Graph's node-value sequence into another.
//! The cost of deleting or adding a node is its ground distance to a *gap*
//! element `g_i`; the gap policy decides the space:
//!
//! * `g_i = (v_{i-1} + v_i) / 2` (midpoint) handles local time shifting but
//!   breaks the triangle inequality — the **non-metric** EGED used for
//!   clustering ([`Eged`]);
//! * `g_i = v_{i-1}` (repeat-previous) reproduces DTW's cost model, offered
//!   for the ablation of §3.1's discussion;
//! * `g_i = g` fixed makes EGED a **metric** (Theorem 2) — [`EgedMetric`],
//!   used for index keys. With `g = 0` this coincides with Chen's ERP,
//!   which is exactly the lineage the paper cites.

use crate::traits::{MetricDistance, SequenceDistance};
use crate::value::SeqValue;

/// Gap policy of the EGED recurrence.
///
/// The paper defines the gap `g_i` relative to "the previous node" of the
/// alignment; concretely, editing out a node is priced against the node the
/// *other* sequence currently sits at:
///
/// * with `g_i` equal to that node ([`GapPolicy::Opposite`]) the recurrence
///   collapses to DTW's — exactly the paper's remark that "when
///   `g_i = v_{i-1}`, the cost function is the same as one in DTW";
/// * with `g_i` the *midpoint* between the edited node and the opposite
///   node ([`GapPolicy::Midpoint`]) deletions/additions cost half the
///   ground distance, which absorbs local time shifting more cheaply than a
///   substitution while still penalizing genuinely different content;
/// * with a *fixed constant* `g` ([`GapPolicy::Constant`]) the cost of an
///   edit no longer depends on alignment context, which is what restores
///   the triangle inequality (Theorem 2).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GapPolicy<V> {
    /// `g_i = (opposite + v_i) / 2`: non-metric, tolerant to local time
    /// shifting (the paper's clustering configuration).
    Midpoint,
    /// `g_i = opposite node`: reproduces DTW.
    Opposite,
    /// Fixed constant gap: the metric configuration of Theorem 2.
    Constant(V),
}

/// Full EGED dynamic program over the `(m + 1) x (n + 1)` edit lattice.
///
/// `D[i][0]` / `D[0][j]` accumulate pure deletions/additions (the paper's
/// `m = 0` / `n = 0` rows, which its metric variant requires); interior
/// cells take the minimum of replace / delete / add per Definition 9.
pub(crate) fn eged_dp<V: SeqValue>(a: &[V], b: &[V], policy: &GapPolicy<V>) -> f64 {
    // With an infinite cutoff the bounded DP never abandons and performs
    // exactly the unbounded recurrence, so the value is bit-identical.
    eged_dp_upto(a, b, policy, f64::INFINITY).expect("infinite cutoff never abandons")
}

/// Cutoff-bounded EGED: `Some(d)` iff `d <= cutoff` (with `d` bit-identical
/// to [`eged_dp`]), `None` iff the distance exceeds `cutoff`.
///
/// Early abandoning is exact: every edit cost is non-negative, so each DP
/// cell is `>=` some cell of the previous row and the final value is `>=`
/// the minimum of any row. Once a row's minimum exceeds `cutoff`, the true
/// distance must too. Floating point preserves the argument — adding a
/// non-negative `f64` never rounds below the addend, and `min` is exact.
///
/// Two implementations behind the `STRG_SCALAR` hatch: the original scalar
/// double loop, and a vectorized one that stages each row's ground
/// distances with [`SeqValue::dist_many`], combines the two previous-row
/// terms in SIMD lanes, and resolves the loop-carried `add` term in a
/// scalar prefix pass — the same association as the scalar kernel, so the
/// value (and every abandon decision) is bit-identical (DESIGN.md §13).
pub(crate) fn eged_dp_upto<V: SeqValue>(
    a: &[V],
    b: &[V],
    policy: &GapPolicy<V>,
    cutoff: f64,
) -> Option<f64> {
    if a.is_empty() && b.is_empty() {
        return if 0.0 <= cutoff { Some(0.0) } else { None };
    }
    if crate::simd::simd_enabled() {
        crate::scratch::with_dp_scratch(|s| eged_dp_upto_vector(a, b, policy, cutoff, s))
    } else {
        eged_dp_upto_scalar(a, b, policy, cutoff)
    }
}

/// Cost of deleting `v` when the other sequence is positioned at `opp`
/// (None when the other sequence is empty).
#[inline]
fn edit_cost<V: SeqValue>(v: &V, opp: Option<&V>, policy: &GapPolicy<V>) -> f64 {
    match policy {
        GapPolicy::Constant(g) => v.dist(g),
        GapPolicy::Opposite => match opp {
            Some(o) => v.dist(o),
            None => v.dist(&V::origin()),
        },
        GapPolicy::Midpoint => match opp {
            Some(o) => v.dist(&v.midpoint(o)),
            None => v.dist(&V::origin()),
        },
    }
}

/// The original scalar DP (the `STRG_SCALAR=1` reference path).
fn eged_dp_upto_scalar<V: SeqValue>(
    a: &[V],
    b: &[V],
    policy: &GapPolicy<V>,
    cutoff: f64,
) -> Option<f64> {
    let m = a.len();
    let n = b.len();
    let edit = |v: &V, opp: Option<&V>| edit_cost(v, opp, policy);

    // Two-row DP; rows indexed by j over b.
    let mut prev = vec![0.0f64; n + 1];
    let mut cur = vec![0.0f64; n + 1];
    for j in 1..=n {
        prev[j] = prev[j - 1] + edit(&b[j - 1], a.first());
    }
    for i in 1..=m {
        cur[0] = prev[0] + edit(&a[i - 1], b.first());
        let mut row_min = cur[0];
        for j in 1..=n {
            let replace = prev[j - 1] + a[i - 1].dist(&b[j - 1]);
            let delete = prev[j] + edit(&a[i - 1], Some(&b[j - 1]));
            let add = cur[j - 1] + edit(&b[j - 1], Some(&a[i - 1]));
            cur[j] = replace.min(delete).min(add);
            row_min = row_min.min(cur[j]);
        }
        if row_min > cutoff {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    if d <= cutoff {
        Some(d)
    } else {
        None
    }
}

/// The vectorized DP over arena rows. Per row `i` it computes
/// `t[j] = (prev[j-1] + dist(aᵢ, bⱼ)).min(prev[j] + delete_cost)` in SIMD
/// lanes (both terms depend only on the previous row), then resolves
/// `cur[j] = t[j].min(cur[j-1] + add_cost)` left to right — exactly the
/// scalar `replace.min(delete).min(add)` chain, cell by cell. For the
/// constant-gap policy the delete/add costs drop from three ground-distance
/// evaluations per cell to one (`dist(aᵢ, g)` is hoisted per row,
/// `dist(bⱼ, g)` per call), which is most of the speedup on 2-D values.
fn eged_dp_upto_vector<V: SeqValue>(
    a: &[V],
    b: &[V],
    policy: &GapPolicy<V>,
    cutoff: f64,
    scratch: &mut crate::scratch::DpScratch,
) -> Option<f64> {
    let m = a.len();
    let n = b.len();
    let (mut prev, mut cur, sub, del, add) = scratch.rows(n);
    prev[0] = 0.0;
    match policy {
        GapPolicy::Constant(g) => {
            // Per-call: add[j] = dist(bⱼ, g) — also row 0's edit costs.
            V::dist_many(g, b, add);
            for j in 1..=n {
                prev[j] = prev[j - 1] + add[j - 1];
            }
            for i in 1..=m {
                let ai = &a[i - 1];
                let ag = ai.dist(g);
                V::dist_many(ai, b, sub);
                crate::simd::combine_const(prev, sub, ag, &mut cur[1..]);
                cur[0] = prev[0] + ag;
                let mut row_min = cur[0];
                for j in 1..=n {
                    let c = cur[j].min(cur[j - 1] + add[j - 1]);
                    cur[j] = c;
                    row_min = row_min.min(c);
                }
                if row_min > cutoff {
                    return None;
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
        _ => {
            // Alignment-dependent gaps: delete/add costs vary per cell and
            // per row, staged scalar; the combine still vectorizes.
            for j in 1..=n {
                prev[j] = prev[j - 1] + edit_cost(&b[j - 1], a.first(), policy);
            }
            for i in 1..=m {
                let ai = &a[i - 1];
                V::dist_many(ai, b, sub);
                for j in 0..n {
                    del[j] = edit_cost(ai, Some(&b[j]), policy);
                    add[j] = edit_cost(&b[j], Some(ai), policy);
                }
                crate::simd::combine_rows(prev, sub, del, &mut cur[1..]);
                cur[0] = prev[0] + edit_cost(ai, b.first(), policy);
                let mut row_min = cur[0];
                for j in 1..=n {
                    let c = cur[j].min(cur[j - 1] + add[j - 1]);
                    cur[j] = c;
                    row_min = row_min.min(c);
                }
                if row_min > cutoff {
                    return None;
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    }
    let d = prev[n];
    if d <= cutoff {
        Some(d)
    } else {
        None
    }
}

/// The non-metric EGED with the midpoint gap `g_i = (v_{i-1} + v_i) / 2`
/// (the paper's clustering distance).
#[derive(Copy, Clone, Debug, Default)]
pub struct Eged;

impl<V: SeqValue> SequenceDistance<V> for Eged {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        eged_dp(a, b, &GapPolicy::Midpoint)
    }
    fn name(&self) -> &'static str {
        "EGED"
    }
}

/// EGED with the DTW gap (`g_i` = the opposite node), provided for the
/// gap-policy ablation; equivalent to DTW.
#[derive(Copy, Clone, Debug, Default)]
pub struct EgedRepeatGap;

impl<V: SeqValue> SequenceDistance<V> for EgedRepeatGap {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        eged_dp(a, b, &GapPolicy::Opposite)
    }
    fn name(&self) -> &'static str {
        "EGED-dtwgap"
    }
}

/// The metric EGED (`EGED_M`): fixed constant gap, satisfying the triangle
/// inequality (Theorem 2). This is the key function of the STRG-Index and
/// the distance the M-tree baseline is driven with.
#[derive(Copy, Clone, Debug)]
pub struct EgedMetric<V> {
    /// The fixed gap constant `g`.
    pub gap: V,
}

impl<V: SeqValue> Default for EgedMetric<V> {
    fn default() -> Self {
        Self { gap: V::origin() }
    }
}

impl<V: SeqValue> EgedMetric<V> {
    /// Metric EGED with gap constant `g = origin` (Chen's ERP choice).
    pub fn new() -> Self {
        Self::default()
    }

    /// Metric EGED with an explicit gap constant.
    pub fn with_gap(gap: V) -> Self {
        Self { gap }
    }
}

impl<V: SeqValue> SequenceDistance<V> for EgedMetric<V> {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        eged_dp(a, b, &GapPolicy::Constant(self.gap))
    }
    fn name(&self) -> &'static str {
        "EGED_M"
    }
}

impl<V: SeqValue> MetricDistance<V> for EgedMetric<V> {}

/// Edit distance with Real Penalty (Chen & Ng, VLDB 2004). ERP is exactly
/// the metric EGED with gap constant `0`; the alias documents the lineage.
pub type Erp<V> = EgedMetric<V>;

#[cfg(test)]
mod tests {
    use super::*;

    fn eged(a: &[f64], b: &[f64]) -> f64 {
        SequenceDistance::distance(&Eged, a, b)
    }

    fn eged_m(a: &[f64], b: &[f64]) -> f64 {
        SequenceDistance::distance(&EgedMetric::<f64>::new(), a, b)
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let s = [1.0, 2.0, 3.0, 2.0];
        assert_eq!(eged(&s, &s), 0.0);
        assert_eq!(eged_m(&s, &s), 0.0);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(eged_m(&[], &[]), 0.0);
        // Against empty: pure additions at |v - 0| each.
        assert_eq!(eged_m(&[], &[2.0, 2.0, 3.0]), 7.0);
        assert_eq!(eged_m(&[1.0, 1.0], &[]), 2.0);
    }

    #[test]
    fn paper_example_metric_values() {
        // §3.1: OGr = {0}, OGs = {1,1}, OGt = {2,2,3} with g = 0:
        // EGED_M(r,t) = 7, EGED_M(r,s) = 2, EGED_M(s,t) = 5, and
        // 7 <= 2 + 5 (triangle inequality).
        let r = [0.0];
        let s = [1.0, 1.0];
        let t = [2.0, 2.0, 3.0];
        assert_eq!(eged_m(&r, &t), 7.0);
        assert_eq!(eged_m(&r, &s), 2.0);
        assert_eq!(eged_m(&s, &t), 5.0);
        assert!(eged_m(&r, &t) <= eged_m(&r, &s) + eged_m(&s, &t));
    }

    #[test]
    fn non_metric_midpoint_gap_is_cheaper_on_time_shift() {
        // A local time shift (one repeated sample) should cost less under
        // the midpoint gap than under the constant gap.
        let a = [1.0, 5.0, 9.0];
        let b = [1.0, 5.0, 5.0, 9.0];
        let non_metric = eged(&a, &b);
        let metric = eged_m(&a, &b);
        assert!(non_metric < metric);
        // Deleting the duplicated 5 against midpoint(5,5) = 5 is free.
        assert_eq!(non_metric, 0.0);
    }

    #[test]
    fn metric_symmetry() {
        let a = [0.0, 3.0, 1.0];
        let b = [2.0, 2.0];
        assert_eq!(eged_m(&a, &b), eged_m(&b, &a));
        assert_eq!(eged(&a, &b), eged(&b, &a));
    }

    #[test]
    fn substitution_bounded_by_pointwise_costs() {
        let a = [1.0, 2.0];
        let b = [1.5, 2.5];
        // Direct replacement costs 1.0; EGED can't exceed it.
        assert!(eged_m(&a, &b) <= 1.0 + 1e-12);
    }

    #[test]
    fn repeat_gap_matches_dtw_flavor() {
        let a = [1.0, 5.0, 9.0];
        let b = [1.0, 5.0, 5.0, 9.0];
        // Deleting the duplicate 5 at cost |5 - 5| = 0.
        assert_eq!(
            SequenceDistance::<f64>::distance(&EgedRepeatGap, &a, &b),
            0.0
        );
    }

    #[test]
    fn custom_gap_constant() {
        let d = EgedMetric::with_gap(10.0);
        // Adding 12 against gap 10 costs 2.
        assert_eq!(d.distance(&[], &[12.0]), 2.0);
    }

    #[test]
    fn works_on_points() {
        use strg_graph::Point2;
        let a = [Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let b = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let d = EgedMetric::<Point2>::new();
        // Best: match both, add (1,1) at |(1,1)| = sqrt(2).
        assert!((d.distance(&a, &b) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn vector_path_matches_scalar_bitwise() {
        use strg_graph::Point2;
        for (m, n) in [(0, 5), (5, 0), (1, 1), (7, 3), (23, 17), (16, 16)] {
            let a: Vec<f64> = (0..m).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos() * 4.0).collect();
            for policy in [
                GapPolicy::Midpoint,
                GapPolicy::Opposite,
                GapPolicy::Constant(0.5),
            ] {
                for cutoff in [f64::INFINITY, 50.0, 10.0, 1.0, 0.0] {
                    let s = eged_dp_upto_scalar(&a, &b, &policy, cutoff);
                    let v = crate::scratch::with_dp_scratch(|sc| {
                        eged_dp_upto_vector(&a, &b, &policy, cutoff, sc)
                    });
                    assert_eq!(
                        s.map(f64::to_bits),
                        v.map(f64::to_bits),
                        "{policy:?} m={m} n={n} cutoff={cutoff}"
                    );
                }
            }
            // Point2 stages rows through the default (scalar, hypot)
            // dist_many but still runs the vectorized combine.
            let pa: Vec<Point2> = a.iter().map(|&x| Point2::new(x, 1.5 - 0.25 * x)).collect();
            let pb: Vec<Point2> = b.iter().map(|&x| Point2::new(0.5 * x, x)).collect();
            for cutoff in [f64::INFINITY, 12.0, 2.0] {
                let policy = GapPolicy::Constant(Point2::new(0.0, 0.0));
                let s = eged_dp_upto_scalar(&pa, &pb, &policy, cutoff);
                let v = crate::scratch::with_dp_scratch(|sc| {
                    eged_dp_upto_vector(&pa, &pb, &policy, cutoff, sc)
                });
                assert_eq!(
                    s.map(f64::to_bits),
                    v.map(f64::to_bits),
                    "Point2 m={m} n={n} cutoff={cutoff}"
                );
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(SequenceDistance::<f64>::name(&Eged), "EGED");
        assert_eq!(
            SequenceDistance::<f64>::name(&EgedMetric::<f64>::new()),
            "EGED_M"
        );
    }
}
