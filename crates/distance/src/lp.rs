//! Lp-norm distances and linear resampling.
//!
//! The paper's introduction names Lp-norms as the "traditional distance
//! functions" baseline. They require equal-length sequences, so this module
//! also provides the [`resample`] helper used both here and by the cluster
//! centroid computation.

use crate::traits::{MetricDistance, SequenceDistance};
use crate::value::SeqValue;
use strg_graph::Point2;

/// Linearly resamples `seq` to exactly `len` samples.
///
/// Endpoints are preserved; interior samples are interpolated at uniform
/// parameter spacing. An empty input yields a sequence of origins; a
/// singleton is repeated.
pub fn resample<V: SeqValue + Lerp>(seq: &[V], len: usize) -> Vec<V> {
    if len == 0 {
        return Vec::new();
    }
    match seq.len() {
        0 => vec![V::origin(); len],
        1 => vec![seq[0]; len],
        n => {
            if len == 1 {
                return vec![seq[0]];
            }
            (0..len)
                .map(|i| {
                    let t = i as f64 / (len - 1) as f64 * (n - 1) as f64;
                    let lo = t.floor() as usize;
                    let hi = (lo + 1).min(n - 1);
                    seq[lo].lerp(&seq[hi], t - lo as f64)
                })
                .collect()
        }
    }
}

/// Linear interpolation between two sequence elements.
pub trait Lerp: Sized {
    /// Value at parameter `t` between `self` (`t = 0`) and `other`
    /// (`t = 1`).
    fn lerp(&self, other: &Self, t: f64) -> Self;
}

impl Lerp for f64 {
    fn lerp(&self, other: &Self, t: f64) -> Self {
        self + (other - self) * t
    }
}

impl Lerp for Point2 {
    fn lerp(&self, other: &Self, t: f64) -> Self {
        Point2::lerp(*self, *other, t)
    }
}

/// Lp-norm distance over sequences, resampling both inputs to the longer
/// length first so different durations remain comparable.
#[derive(Copy, Clone, Debug)]
pub struct LpNorm {
    /// The exponent `p >= 1`. `f64::INFINITY` selects the Chebyshev norm.
    pub p: f64,
}

impl LpNorm {
    /// Manhattan distance (`p = 1`).
    pub const L1: LpNorm = LpNorm { p: 1.0 };
    /// Euclidean distance (`p = 2`).
    pub const L2: LpNorm = LpNorm { p: 2.0 };
    /// Chebyshev distance (`p = inf`).
    pub const LINF: LpNorm = LpNorm { p: f64::INFINITY };
}

impl Default for LpNorm {
    fn default() -> Self {
        Self::L2
    }
}

impl<V: SeqValue + Lerp> SequenceDistance<V> for LpNorm {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        let len = a.len().max(b.len());
        if len == 0 {
            return 0.0;
        }
        let ra;
        let rb;
        let (a, b): (&[V], &[V]) = if a.len() == b.len() {
            (a, b)
        } else {
            ra = resample(a, len);
            rb = resample(b, len);
            (&ra, &rb)
        };
        if self.p.is_infinite() {
            return a.iter().zip(b).map(|(x, y)| x.dist(y)).fold(0.0, f64::max);
        }
        let sum: f64 = a.iter().zip(b).map(|(x, y)| x.dist(y).powf(self.p)).sum();
        sum.powf(1.0 / self.p)
    }

    fn name(&self) -> &'static str {
        "Lp"
    }
}

// Lp over *equal-length* sequences is a metric; with the shared-resampling
// convention above, identity and symmetry hold and the triangle inequality
// holds within any fixed length class, which is how the harness uses it.
impl<V: SeqValue + Lerp> MetricDistance<V> for LpNorm {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_preserves_endpoints() {
        let s = [0.0, 10.0];
        let r = resample(&s, 5);
        assert_eq!(r, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        assert_eq!(resample(&s, 2), vec![0.0, 10.0]);
    }

    #[test]
    fn resample_degenerate_inputs() {
        let e: [f64; 0] = [];
        assert_eq!(resample(&e, 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(resample(&[7.0], 3), vec![7.0, 7.0, 7.0]);
        assert_eq!(resample(&[1.0, 2.0], 1), vec![1.0]);
        assert!(resample(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn resample_downsamples() {
        let s = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(resample(&s, 3), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn l1_l2_linf() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(SequenceDistance::distance(&LpNorm::L1, &a[..], &b[..]), 7.0);
        assert_eq!(SequenceDistance::distance(&LpNorm::L2, &a[..], &b[..]), 5.0);
        assert_eq!(
            SequenceDistance::distance(&LpNorm::LINF, &a[..], &b[..]),
            4.0
        );
    }

    #[test]
    fn unequal_lengths_resampled() {
        let a = [0.0, 10.0];
        let b = [0.0, 5.0, 10.0];
        // Resampled a at length 3 equals b exactly.
        assert_eq!(SequenceDistance::distance(&LpNorm::L2, &a[..], &b[..]), 0.0);
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        let e: [f64; 0] = [];
        assert_eq!(SequenceDistance::distance(&LpNorm::L2, &e[..], &e[..]), 0.0);
    }
}
