//! Longest Common Subsequence distance ([7], Vlachos-style real-valued
//! matching), the second baseline of Figure 5.

use crate::traits::SequenceDistance;
use crate::value::SeqValue;

/// LCS over real-valued sequences: two elements "match" when their ground
/// distance is at most `epsilon`. The distance is `1 - LCS / min(m, n)`,
/// in `[0, 1]`; non-metric.
#[derive(Copy, Clone, Debug)]
pub struct Lcs {
    /// Matching threshold between elements.
    pub epsilon: f64,
}

impl Default for Lcs {
    /// `epsilon = 5.0` matches the sigma of the synthetic workload
    /// generator, the configuration used in the Figure 5 experiments.
    fn default() -> Self {
        Self { epsilon: 5.0 }
    }
}

impl Lcs {
    /// Creates an LCS distance with the given matching threshold.
    pub fn new(epsilon: f64) -> Self {
        Self { epsilon }
    }

    /// Length of the longest common subsequence under the threshold.
    pub fn lcs_len<V: SeqValue>(&self, a: &[V], b: &[V]) -> usize {
        let m = a.len();
        let n = b.len();
        if m == 0 || n == 0 {
            return 0;
        }
        let mut prev = vec![0usize; n + 1];
        let mut cur = vec![0usize; n + 1];
        for i in 1..=m {
            for j in 1..=n {
                cur[j] = if a[i - 1].dist(&b[j - 1]) <= self.epsilon {
                    prev[j - 1] + 1
                } else {
                    prev[j].max(cur[j - 1])
                };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n]
    }
}

impl<V: SeqValue> SequenceDistance<V> for Lcs {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        let denom = a.len().min(b.len());
        if denom == 0 {
            return if a.len() == b.len() { 0.0 } else { 1.0 };
        }
        1.0 - self.lcs_len(a, b) as f64 / denom as f64
    }

    fn name(&self) -> &'static str {
        "LCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(SequenceDistance::distance(&Lcs::new(0.1), &s, &s), 0.0);
    }

    #[test]
    fn lcs_length_counts_matches() {
        let l = Lcs::new(0.5);
        assert_eq!(l.lcs_len(&[1.0, 2.0, 3.0], &[1.0, 9.0, 3.0]), 2);
        assert_eq!(l.lcs_len(&[1.0, 2.0], &[5.0, 6.0]), 0);
    }

    #[test]
    fn subsequence_not_substring() {
        let l = Lcs::new(0.1);
        // 1,3 is a common subsequence despite the interleaving.
        assert_eq!(l.lcs_len(&[1.0, 7.0, 3.0], &[1.0, 3.0]), 2);
        let d: f64 = SequenceDistance::distance(&l, [1.0f64, 7.0, 3.0][..].as_ref(), &[1.0, 3.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn threshold_widens_matches() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.4, 2.4, 3.4];
        assert_eq!(Lcs::new(0.1).lcs_len(&a, &b), 0);
        assert_eq!(Lcs::new(0.5).lcs_len(&a, &b), 3);
    }

    #[test]
    fn distance_is_bounded() {
        let a = [0.0, 10.0, 20.0];
        let b = [100.0, 200.0];
        let d: f64 = SequenceDistance::distance(&Lcs::new(1.0), &a[..], &b[..]);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn empty_sequences() {
        let l = Lcs::new(1.0);
        let e: [f64; 0] = [];
        assert_eq!(SequenceDistance::distance(&l, &e[..], &e[..]), 0.0);
        assert_eq!(SequenceDistance::distance(&l, &e[..], &[1.0][..]), 1.0);
    }
}
