//! Sequence element values.
//!
//! The paper's EGED (Definition 9) treats a node as its attribute value
//! `nu(v)` and measures `|v_i - v_j|`. Object Graphs scalarize to `f64`
//! sequences, but trajectories are naturally 2-D, so every distance in this
//! crate is generic over [`SeqValue`]: anything with a metric ground
//! distance, a midpoint (for the non-metric gap policy), and an origin (the
//! fixed constant gap of Theorem 2).

use strg_graph::Point2;

/// An element of a time series that the sequence distances can compare.
///
/// Implementations must make [`SeqValue::dist`] a metric (non-negative,
/// symmetric, zero iff equal, triangle inequality); the metric property of
/// [`crate::EgedMetric`] (Theorem 2) is inherited from it.
///
/// `Send + Sync` lets the clustering and search layers fan sequences out
/// across scoped worker threads; element values are plain `Copy` data, so
/// every sensible implementor satisfies both already.
pub trait SeqValue: Copy + std::fmt::Debug + PartialEq + Send + Sync {
    /// Ground distance between two elements (`|v_i - v_j|` in the paper).
    fn dist(&self, other: &Self) -> f64;
    /// Midpoint of two elements, for the non-metric gap
    /// `g_i = (v_{i-1} + v_i) / 2`.
    fn midpoint(&self, other: &Self) -> Self;
    /// The canonical fixed gap constant (`g`) that makes EGED a metric.
    fn origin() -> Self;
    /// Componentwise minimum, for axis-aligned bounding envelopes.
    fn component_min(&self, other: &Self) -> Self;
    /// Componentwise maximum, for axis-aligned bounding envelopes.
    fn component_max(&self, other: &Self) -> Self;
    /// Ground distance from `self` to the axis-aligned box `[lo, hi]`
    /// (zero inside). Must satisfy `self.dist_to_box(lo, hi) <= self.dist(u)`
    /// for every `u` with `lo <= u <= hi` componentwise, so that envelope
    /// lower bounds built on it stay admissible.
    fn dist_to_box(&self, lo: &Self, hi: &Self) -> f64;
    /// Batch ground distances: writes `q.dist(&xs[i])` into `out[i]`.
    ///
    /// This is the DP kernels' row-staging hook: overrides must produce
    /// values bit-identical to elementwise [`SeqValue::dist`] calls (the
    /// metric is symmetric, so callers pass the operands in either role).
    /// The default is the scalar loop; `f64` vectorizes it. `Point2`
    /// deliberately keeps the default — its ground distance goes through
    /// libm's `hypot`, which has no bit-exact SIMD equivalent.
    fn dist_many(q: &Self, xs: &[Self], out: &mut [f64]) {
        for (x, d) in xs.iter().zip(out.iter_mut()) {
            *d = q.dist(x);
        }
    }
    /// Elementwise paired distances: writes `a[i].dist(&b[i])` into
    /// `out[i]` (the Lp kernels' staging hook). Same bit-identity contract
    /// as [`SeqValue::dist_many`].
    fn dist_pairs(a: &[Self], b: &[Self], out: &mut [f64]) {
        for ((x, y), d) in a.iter().zip(b).zip(out.iter_mut()) {
            *d = x.dist(y);
        }
    }
}

impl SeqValue for f64 {
    fn dist(&self, other: &Self) -> f64 {
        (self - other).abs()
    }
    fn midpoint(&self, other: &Self) -> Self {
        (self + other) / 2.0
    }
    fn origin() -> Self {
        0.0
    }
    fn component_min(&self, other: &Self) -> Self {
        self.min(*other)
    }
    fn component_max(&self, other: &Self) -> Self {
        self.max(*other)
    }
    fn dist_to_box(&self, lo: &Self, hi: &Self) -> f64 {
        if self < lo {
            lo - self
        } else if self > hi {
            self - hi
        } else {
            0.0
        }
    }
    fn dist_many(q: &Self, xs: &[Self], out: &mut [f64]) {
        crate::simd::dist_abs_many(*q, xs, out);
    }
    fn dist_pairs(a: &[Self], b: &[Self], out: &mut [f64]) {
        crate::simd::dist_abs_pairs(a, b, out);
    }
}

impl SeqValue for Point2 {
    fn dist(&self, other: &Self) -> f64 {
        Point2::dist(*self, *other)
    }
    fn midpoint(&self, other: &Self) -> Self {
        Point2::midpoint(*self, *other)
    }
    fn origin() -> Self {
        Point2::ZERO
    }
    fn component_min(&self, other: &Self) -> Self {
        Point2::new(self.x.min(other.x), self.y.min(other.y))
    }
    fn component_max(&self, other: &Self) -> Self {
        Point2::new(self.x.max(other.x), self.y.max(other.y))
    }
    fn dist_to_box(&self, lo: &Self, hi: &Self) -> f64 {
        let dx = (lo.x - self.x).max(self.x - hi.x).max(0.0);
        let dy = (lo.y - self.y).max(self.y - hi.y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_value() {
        assert_eq!(SeqValue::dist(&2.0f64, &-1.0), 3.0);
        assert_eq!(SeqValue::midpoint(&2.0f64, &4.0), 3.0);
        assert_eq!(f64::origin(), 0.0);
    }

    #[test]
    fn point_value() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(SeqValue::dist(&a, &b), 5.0);
        assert_eq!(SeqValue::midpoint(&a, &b), Point2::new(1.5, 2.0));
        assert_eq!(Point2::origin(), Point2::ZERO);
    }

    #[test]
    fn f64_box_distance() {
        assert_eq!(SeqValue::component_min(&2.0f64, &-1.0), -1.0);
        assert_eq!(SeqValue::component_max(&2.0f64, &-1.0), 2.0);
        assert_eq!(1.5f64.dist_to_box(&1.0, &2.0), 0.0);
        assert_eq!(0.5f64.dist_to_box(&1.0, &2.0), 0.5);
        assert_eq!(3.0f64.dist_to_box(&1.0, &2.0), 1.0);
    }

    #[test]
    fn point_box_distance() {
        let lo = Point2::new(0.0, 0.0);
        let hi = Point2::new(2.0, 2.0);
        assert_eq!(Point2::new(1.0, 1.0).dist_to_box(&lo, &hi), 0.0);
        // Outside on one axis only: distance along that axis.
        assert_eq!(Point2::new(5.0, 1.0).dist_to_box(&lo, &hi), 3.0);
        // Outside diagonally: Euclidean corner distance.
        assert_eq!(Point2::new(5.0, 6.0).dist_to_box(&lo, &hi), 5.0);
        let m = Point2::new(-1.0, 3.0);
        assert_eq!(
            SeqValue::component_min(&m, &Point2::new(0.0, 1.0)),
            Point2::new(-1.0, 1.0)
        );
        assert_eq!(
            SeqValue::component_max(&m, &Point2::new(0.0, 1.0)),
            Point2::new(0.0, 3.0)
        );
    }
}
