//! Sequence element values.
//!
//! The paper's EGED (Definition 9) treats a node as its attribute value
//! `nu(v)` and measures `|v_i - v_j|`. Object Graphs scalarize to `f64`
//! sequences, but trajectories are naturally 2-D, so every distance in this
//! crate is generic over [`SeqValue`]: anything with a metric ground
//! distance, a midpoint (for the non-metric gap policy), and an origin (the
//! fixed constant gap of Theorem 2).

use strg_graph::Point2;

/// An element of a time series that the sequence distances can compare.
///
/// Implementations must make [`SeqValue::dist`] a metric (non-negative,
/// symmetric, zero iff equal, triangle inequality); the metric property of
/// [`crate::EgedMetric`] (Theorem 2) is inherited from it.
///
/// `Send + Sync` lets the clustering and search layers fan sequences out
/// across scoped worker threads; element values are plain `Copy` data, so
/// every sensible implementor satisfies both already.
pub trait SeqValue: Copy + std::fmt::Debug + PartialEq + Send + Sync {
    /// Ground distance between two elements (`|v_i - v_j|` in the paper).
    fn dist(&self, other: &Self) -> f64;
    /// Midpoint of two elements, for the non-metric gap
    /// `g_i = (v_{i-1} + v_i) / 2`.
    fn midpoint(&self, other: &Self) -> Self;
    /// The canonical fixed gap constant (`g`) that makes EGED a metric.
    fn origin() -> Self;
}

impl SeqValue for f64 {
    fn dist(&self, other: &Self) -> f64 {
        (self - other).abs()
    }
    fn midpoint(&self, other: &Self) -> Self {
        (self + other) / 2.0
    }
    fn origin() -> Self {
        0.0
    }
}

impl SeqValue for Point2 {
    fn dist(&self, other: &Self) -> f64 {
        Point2::dist(*self, *other)
    }
    fn midpoint(&self, other: &Self) -> Self {
        Point2::midpoint(*self, *other)
    }
    fn origin() -> Self {
        Point2::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_value() {
        assert_eq!(SeqValue::dist(&2.0f64, &-1.0), 3.0);
        assert_eq!(SeqValue::midpoint(&2.0f64, &4.0), 3.0);
        assert_eq!(f64::origin(), 0.0);
    }

    #[test]
    fn point_value() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(SeqValue::dist(&a, &b), 5.0);
        assert_eq!(SeqValue::midpoint(&a, &b), Point2::new(1.5, 2.0));
        assert_eq!(Point2::origin(), Point2::ZERO);
    }
}
