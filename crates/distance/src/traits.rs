//! The distance-function abstraction shared by clustering and indexing.

use crate::value::SeqValue;

/// A (dis)similarity function between two sequences.
///
/// Lower is more similar; `0` means identical under the function's notion
/// of equality. Implementations need not be metrics — the paper explicitly
/// uses the *non-metric* EGED for clustering and the *metric* EGED for
/// indexing; the [`MetricDistance`] marker separates the two.
pub trait SequenceDistance<V: SeqValue> {
    /// Distance between sequences `a` and `b`.
    fn distance(&self, a: &[V], b: &[V]) -> f64;

    /// Short human-readable name (for experiment output, e.g. `"EGED"`).
    fn name(&self) -> &'static str;
}

/// Marker trait asserting that [`SequenceDistance::distance`] satisfies the
/// metric axioms (non-negativity, identity, symmetry, triangle inequality),
/// and may therefore drive metric access methods (the STRG-Index leaf keys
/// and the M-tree both rely on the triangle inequality to prune).
pub trait MetricDistance<V: SeqValue>: SequenceDistance<V> {}

impl<V: SeqValue, D: SequenceDistance<V> + ?Sized> SequenceDistance<V> for &D {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        (**self).distance(a, b)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<V: SeqValue, D: MetricDistance<V> + ?Sized> MetricDistance<V> for &D {}
