//! # strg-distance
//!
//! Sequence distance functions of the STRG-Index paper (Section 3):
//!
//! * [`Eged`] — the non-metric Extended Graph Edit Distance with the
//!   midpoint gap, used for clustering Object Graphs;
//! * [`EgedMetric`] — the metric EGED (fixed constant gap, Theorem 2), the
//!   key function of the STRG-Index and of the M-tree baseline;
//! * [`Dtw`], [`Lcs`], [`LpNorm`] — the baselines of the paper's
//!   evaluation (Figure 5 and the introduction's discussion);
//! * [`CountingDistance`] / [`ObservedDistance`] — instrumentation for the
//!   paper's cost model (number of distance evaluations, §6.3); the latter
//!   records into a shared [`strg_obs::Recorder`].
//!
//! Everything is generic over [`SeqValue`] so the same code measures 1-D
//! scalarized Object Graphs and 2-D centroid trajectories.
//!
//! ```
//! use strg_distance::{Eged, EgedMetric, SequenceDistance};
//!
//! // The paper's §3.1 example: with the fixed gap g = 0 the metric EGED
//! // obeys the triangle inequality (Theorem 2).
//! let (r, s, t) = ([0.0], [1.0, 1.0], [2.0, 2.0, 3.0]);
//! let m = EgedMetric::<f64>::new();
//! assert_eq!(m.distance(&r, &t), 7.0);
//! assert_eq!(m.distance(&r, &s), 2.0);
//! assert_eq!(m.distance(&s, &t), 5.0);
//! assert!(m.distance(&r, &t) <= m.distance(&r, &s) + m.distance(&s, &t));
//!
//! // The non-metric EGED absorbs local time shifting for free.
//! let a = [1.0, 5.0, 9.0];
//! let b = [1.0, 5.0, 5.0, 9.0];
//! assert_eq!(Eged.distance(&a, &b), 0.0);
//! ```

#![warn(missing_docs)]

mod bounded;
mod counting;
mod dtw;
mod edr;
mod eged;
mod lcs;
mod lp;
mod observed;
mod scratch;
mod simd;
mod traits;
mod value;

pub use bounded::{
    batching_enabled, lower_bounds_enabled, shard_bounds_enabled, BoundedDistance, LowerBound,
    SeqSummary, SummaryEnvelope, NO_BATCH_ENV, NO_LB_ENV, NO_SHARD_LB_ENV,
};
pub use counting::CountingDistance;
pub use dtw::Dtw;
pub use edr::Edr;
pub use eged::{Eged, EgedMetric, EgedRepeatGap, Erp, GapPolicy};
pub use lcs::Lcs;
pub use lp::{resample, Lerp, LpNorm};
pub use observed::ObservedDistance;
pub use simd::{simd_enabled, SCALAR_ENV};
pub use traits::{MetricDistance, SequenceDistance};
pub use value::SeqValue;
