//! Distance-evaluation counting.
//!
//! The paper's cost model for search (§6.3) is the *number of distance
//! evaluations*: "the number of distance evaluations performed during query
//! processing is the dominant component for the performance of search".
//! [`CountingDistance`] wraps any distance and counts calls through a shared
//! atomic, so index build and k-NN experiments (Figure 7) report exactly
//! this quantity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::bounded::{BoundedDistance, LowerBound, SeqSummary, SummaryEnvelope};
use crate::traits::{MetricDistance, SequenceDistance};
use crate::value::SeqValue;

/// Wraps a distance function, counting every evaluation.
///
/// Clones share the same counter, so a query routine can keep a clone while
/// the index owns the original.
#[derive(Clone, Debug, Default)]
pub struct CountingDistance<D> {
    inner: D,
    counter: Arc<AtomicU64>,
}

impl<D> CountingDistance<D> {
    /// Wraps `inner` with a fresh zeroed counter.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of distance evaluations so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.counter.store(0, Ordering::Relaxed);
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<V: SeqValue, D: SequenceDistance<V>> SequenceDistance<V> for CountingDistance<D> {
    fn distance(&self, a: &[V], b: &[V]) -> f64 {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<V: SeqValue, D: MetricDistance<V>> MetricDistance<V> for CountingDistance<D> {}

impl<V: SeqValue, D: BoundedDistance<V>> BoundedDistance<V> for CountingDistance<D> {
    /// A bounded evaluation counts as one distance evaluation, whether or
    /// not it abandons — the cost model charges the *decision to refine*,
    /// and early abandoning is how a refine gets cheaper, not free.
    fn distance_upto(&self, a: &[V], b: &[V], cutoff: f64) -> Option<f64> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.distance_upto(a, b, cutoff)
    }
}

impl<V: SeqValue, D: LowerBound<V>> LowerBound<V> for CountingDistance<D> {
    // Summaries and lower bounds are filter-side work, not distance
    // evaluations: they are deliberately not counted.
    fn summarize(&self, seq: &[V]) -> SeqSummary<V> {
        self.inner.summarize(seq)
    }
    fn lower_bound(
        &self,
        query: &[V],
        query_summary: &SeqSummary<V>,
        candidate: &SeqSummary<V>,
    ) -> f64 {
        self.inner.lower_bound(query, query_summary, candidate)
    }
    fn envelope_bound(
        &self,
        query: &[V],
        query_summary: &SeqSummary<V>,
        envelope: &SummaryEnvelope<V>,
    ) -> f64 {
        self.inner.envelope_bound(query, query_summary, envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eged::EgedMetric;

    #[test]
    fn counts_and_resets() {
        let d = CountingDistance::new(EgedMetric::<f64>::new());
        assert_eq!(d.count(), 0);
        let _ = d.distance(&[1.0], &[2.0]);
        let _ = d.distance(&[1.0], &[3.0]);
        assert_eq!(d.count(), 2);
        d.reset();
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn clones_share_counter() {
        let d = CountingDistance::new(EgedMetric::<f64>::new());
        let d2 = d.clone();
        let _ = d2.distance(&[1.0], &[2.0]);
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn delegates_value() {
        let d = CountingDistance::new(EgedMetric::<f64>::new());
        let raw = EgedMetric::<f64>::new();
        assert_eq!(
            d.distance(&[1.0, 2.0], &[3.0]),
            raw.distance(&[1.0, 2.0], &[3.0])
        );
        assert_eq!(SequenceDistance::<f64>::name(&d), "EGED_M");
    }
}
