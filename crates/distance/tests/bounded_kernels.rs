//! Property-based verification of the bounded-kernel contracts
//! (DESIGN.md §9): admissibility of every summary lower bound and
//! cutoff-equivalence of every `distance_upto` implementation.
//!
//! The contracts under test:
//!
//! * **Admissibility** — `lower_bound(q, qsum, csum) <= distance(q, c)` for
//!   every pair of sequences. An inadmissible bound would silently drop
//!   true neighbors, so this is the load-bearing property.
//! * **Cutoff equivalence** — `distance_upto(a, b, c)` returns
//!   `Some(distance(a, b))` (bit-identical) exactly when
//!   `distance(a, b) <= c`, and `None` exactly when it exceeds `c`. Early
//!   abandoning is a physical shortcut, never a semantic change.
//! * **Symmetry** — the bounded kernels inherit the symmetry of their
//!   underlying distances.

use proptest::prelude::*;
use strg_distance::{BoundedDistance, Dtw, Eged, EgedMetric, LowerBound, LpNorm, SequenceDistance};
use strg_graph::Point2;

fn seq() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 0..12)
}

fn point_seq() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point2::new(x, y)),
        0..10,
    )
}

/// Cutoffs spanning both sides of the true distance, including the exact
/// boundary `c == d` (which must yield `Some`).
fn cutoffs(d: f64) -> [f64; 6] {
    [0.0, d * 0.5, d, d * 1.5, d + 1.0, 1e6]
}

/// Asserts the full cutoff-equivalence contract for one distance and pair.
fn assert_cutoff_contract<V, D>(dist: &D, a: &[V], b: &[V])
where
    V: strg_distance::SeqValue,
    D: BoundedDistance<V>,
{
    let d = dist.distance(a, b);
    for c in cutoffs(d) {
        match dist.distance_upto(a, b, c) {
            Some(got) => {
                assert!(d <= c, "Some returned but {d} > cutoff {c}");
                assert_eq!(
                    got.to_bits(),
                    d.to_bits(),
                    "bounded result differs from full distance at cutoff {c}"
                );
            }
            None => assert!(d > c, "None returned but {d} <= cutoff {c}"),
        }
    }
}

const EPS: f64 = 1e-9;

proptest! {
    /// EGED_M lower bound is admissible over scalar sequences.
    #[test]
    fn eged_metric_lb_admissible(a in seq(), b in seq()) {
        let m = EgedMetric::<f64>::new();
        let lb = m.lower_bound(&a, &m.summarize(&a), &m.summarize(&b));
        prop_assert!(lb <= m.distance(&a, &b), "lb {lb} > d {}", m.distance(&a, &b));
    }

    /// ... and with a non-zero gap constant.
    #[test]
    fn eged_metric_lb_admissible_nonzero_gap(a in seq(), b in seq()) {
        let m = EgedMetric::with_gap(7.5f64);
        let lb = m.lower_bound(&a, &m.summarize(&a), &m.summarize(&b));
        prop_assert!(lb <= m.distance(&a, &b));
    }

    /// ... and over 2-D trajectories.
    #[test]
    fn eged_metric_lb_admissible_points(a in point_seq(), b in point_seq()) {
        let m = EgedMetric::<Point2>::new();
        let lb = m.lower_bound(&a, &m.summarize(&a), &m.summarize(&b));
        prop_assert!(lb <= m.distance(&a, &b));
    }

    /// DTW's envelope bound is admissible over scalars and trajectories.
    #[test]
    fn dtw_lb_admissible(a in seq(), b in seq()) {
        let d = Dtw;
        let lb = LowerBound::<f64>::lower_bound(&d, &a, &d.summarize(&a), &d.summarize(&b));
        prop_assert!(lb <= SequenceDistance::<f64>::distance(&d, &a, &b));
    }

    #[test]
    fn dtw_lb_admissible_points(a in point_seq(), b in point_seq()) {
        let d = Dtw;
        let lb = LowerBound::<Point2>::lower_bound(&d, &a, &d.summarize(&a), &d.summarize(&b));
        prop_assert!(lb <= SequenceDistance::<Point2>::distance(&d, &a, &b));
    }

    /// Cutoff equivalence for every bounded kernel, over f64.
    #[test]
    fn eged_metric_cutoff_equivalence(a in seq(), b in seq()) {
        assert_cutoff_contract(&EgedMetric::<f64>::new(), &a, &b);
        assert_cutoff_contract(&EgedMetric::with_gap(7.5f64), &a, &b);
    }

    #[test]
    fn eged_cutoff_equivalence(a in seq(), b in seq()) {
        assert_cutoff_contract::<f64, _>(&Eged, &a, &b);
    }

    #[test]
    fn dtw_cutoff_equivalence(a in seq(), b in seq()) {
        assert_cutoff_contract::<f64, _>(&Dtw, &a, &b);
    }

    #[test]
    fn lp_cutoff_equivalence(a in seq(), b in seq()) {
        assert_cutoff_contract::<f64, _>(&LpNorm::L1, &a, &b);
        assert_cutoff_contract::<f64, _>(&LpNorm::L2, &a, &b);
        assert_cutoff_contract::<f64, _>(&LpNorm::LINF, &a, &b);
    }

    /// Cutoff equivalence over 2-D trajectories.
    #[test]
    fn cutoff_equivalence_points(a in point_seq(), b in point_seq()) {
        assert_cutoff_contract(&EgedMetric::<Point2>::new(), &a, &b);
        assert_cutoff_contract::<Point2, _>(&Dtw, &a, &b);
        assert_cutoff_contract::<Point2, _>(&LpNorm::L2, &a, &b);
    }

    /// The bounded kernel stays symmetric: abandoning depends only on row
    /// minima, which a transposed lattice reproduces within fp equality of
    /// the final value.
    #[test]
    fn bounded_symmetry(a in seq(), b in seq()) {
        let m = EgedMetric::<f64>::new();
        let d = m.distance(&a, &b);
        for c in cutoffs(d) {
            let ab = m.distance_upto(&a, &b, c);
            let ba = m.distance_upto(&b, &a, c);
            match (ab, ba) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < EPS),
                (None, None) => {}
                other => prop_assert!(false, "asymmetric abandonment: {other:?}"),
            }
        }
    }

    /// Summaries are insensitive to which side is the query: the EGED_M
    /// bound itself is symmetric in the two summaries.
    #[test]
    fn eged_metric_lb_symmetric(a in seq(), b in seq()) {
        let m = EgedMetric::<f64>::new();
        let (sa, sb) = (m.summarize(&a), m.summarize(&b));
        let lb_ab = m.lower_bound(&a, &sa, &sb);
        let lb_ba = m.lower_bound(&b, &sb, &sa);
        prop_assert!((lb_ab - lb_ba).abs() < EPS);
    }
}
