//! `CountingDistance` under concurrency.
//!
//! The paper's cost model is the exact number of distance evaluations
//! (§6.3), and the parallel search paths in `strg-core` report pruning
//! power through this counter. These tests pin down that the shared
//! `Arc<AtomicU64>` counter never loses an increment, whether the calls
//! come from raw `std::thread` workers or from `strg_parallel::par_map`
//! at any thread count.

use std::sync::Arc;

use strg_distance::{CountingDistance, EgedMetric, SequenceDistance};
use strg_parallel::{par_map, Threads};

fn workload(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..8).map(|j| (i * 8 + j) as f64 * 0.25).collect())
        .collect()
}

#[test]
fn count_is_exact_under_raw_threads() {
    const THREADS: usize = 8;
    const CALLS_PER_THREAD: usize = 500;

    let d = CountingDistance::new(EgedMetric::<f64>::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            // Clones share one counter; each worker hammers its own clone.
            let d = d.clone();
            s.spawn(move || {
                let a: Vec<f64> = (0..6).map(|i| (t * 6 + i) as f64).collect();
                let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
                for _ in 0..CALLS_PER_THREAD {
                    let _ = d.distance(&a, &b);
                }
            });
        }
    });
    assert_eq!(
        d.count(),
        (THREADS * CALLS_PER_THREAD) as u64,
        "every evaluation from every thread must be counted exactly once"
    );
}

#[test]
fn count_is_exact_under_par_map() {
    let queries = workload(64);
    let refs = workload(16);
    let expected = (queries.len() * refs.len()) as u64;

    for threads in [1, 2, 4, 8, 32] {
        let d = CountingDistance::new(EgedMetric::<f64>::new());
        // One full distance matrix through the deterministic fork/join
        // helper: the counter must equal rows x cols at every thread count.
        let rows = par_map(&queries, Threads::Fixed(threads), |q| {
            refs.iter().map(|r| d.distance(q, r)).collect::<Vec<f64>>()
        });
        assert_eq!(rows.len(), queries.len());
        assert_eq!(d.count(), expected, "threads = {threads}");
    }
}

#[test]
fn reset_between_parallel_phases_is_clean() {
    let queries = workload(24);
    let d = Arc::new(CountingDistance::new(EgedMetric::<f64>::new()));
    let probe: Vec<f64> = (0..8).map(|i| i as f64).collect();

    let _ = par_map(&queries, Threads::Fixed(4), |q| d.distance(q, &probe));
    assert_eq!(d.count(), queries.len() as u64);

    d.reset();
    assert_eq!(d.count(), 0, "reset must zero the shared counter");

    let _ = par_map(&queries, Threads::Fixed(4), |q| d.distance(q, &probe));
    assert_eq!(
        d.count(),
        queries.len() as u64,
        "counts after reset start fresh"
    );
}
