//! Property-based verification of Theorem 2 (the metric EGED is a metric)
//! and of the documented *failure* of the axioms for the non-metric
//! variants.

use proptest::prelude::*;
use strg_distance::{Dtw, Eged, EgedMetric, Lcs, SequenceDistance};
use strg_graph::Point2;

fn seq() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 0..12)
}

fn nonempty_seq() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 1..12)
}

fn point_seq() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point2::new(x, y)),
        0..10,
    )
}

const EPS: f64 = 1e-9;

proptest! {
    #[test]
    fn eged_metric_non_negative(a in seq(), b in seq()) {
        let d = EgedMetric::<f64>::new();
        prop_assert!(d.distance(&a, &b) >= 0.0);
    }

    #[test]
    fn eged_metric_identity(a in seq()) {
        let d = EgedMetric::<f64>::new();
        prop_assert!(d.distance(&a, &a).abs() < EPS);
    }

    #[test]
    fn eged_metric_symmetry(a in seq(), b in seq()) {
        let d = EgedMetric::<f64>::new();
        prop_assert!((d.distance(&a, &b) - d.distance(&b, &a)).abs() < EPS);
    }

    /// Theorem 2: with a fixed constant gap, EGED satisfies the triangle
    /// inequality.
    #[test]
    fn eged_metric_triangle(a in seq(), b in seq(), c in seq()) {
        let d = EgedMetric::<f64>::new();
        let ab = d.distance(&a, &b);
        let bc = d.distance(&b, &c);
        let ac = d.distance(&a, &c);
        prop_assert!(ac <= ab + bc + EPS, "{ac} > {ab} + {bc}");
    }

    /// The triangle inequality also holds with a non-zero gap constant.
    #[test]
    fn eged_metric_triangle_nonzero_gap(a in seq(), b in seq(), c in seq()) {
        let d = EgedMetric::with_gap(7.5f64);
        let ab = d.distance(&a, &b);
        let bc = d.distance(&b, &c);
        let ac = d.distance(&a, &c);
        prop_assert!(ac <= ab + bc + EPS, "{ac} > {ab} + {bc}");
    }

    /// And over 2-D trajectories.
    #[test]
    fn eged_metric_triangle_points(a in point_seq(), b in point_seq(), c in point_seq()) {
        let d = EgedMetric::<Point2>::new();
        let ab = d.distance(&a, &b);
        let bc = d.distance(&b, &c);
        let ac = d.distance(&a, &c);
        prop_assert!(ac <= ab + bc + EPS, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn non_metric_eged_still_symmetric_and_non_negative(a in seq(), b in seq()) {
        let d = Eged;
        let ab: f64 = d.distance(&a, &b);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - SequenceDistance::<f64>::distance(&d, &b, &a)).abs() < EPS);
    }

    #[test]
    fn dtw_identity_and_symmetry(a in nonempty_seq(), b in nonempty_seq()) {
        let d = Dtw;
        prop_assert!(SequenceDistance::<f64>::distance(&d, &a, &a).abs() < EPS);
        prop_assert!((SequenceDistance::<f64>::distance(&d, &a, &b)
            - SequenceDistance::<f64>::distance(&d, &b, &a)).abs() < EPS);
    }

    #[test]
    fn lcs_bounded_and_symmetric(a in seq(), b in seq()) {
        let d = Lcs::new(1.0);
        let ab: f64 = d.distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - SequenceDistance::<f64>::distance(&d, &b, &a)).abs() < EPS);
    }

    /// EGED_M to the empty sequence equals the mass of the sequence
    /// relative to the gap constant — the "fixed point" the paper uses to
    /// key index leaves.
    #[test]
    fn eged_metric_norm_against_empty(a in seq()) {
        let d = EgedMetric::<f64>::new();
        let expect: f64 = a.iter().map(|v| v.abs()).sum();
        prop_assert!((d.distance(&a, &[]) - expect).abs() < EPS);
    }
}

/// A deterministic witness that the *non-metric* EGED violates the triangle
/// inequality — the exact example from §3.1 of the paper.
#[test]
fn non_metric_eged_triangle_violation_witness() {
    // The paper's example uses DTW-style replication; under the midpoint
    // gap a violation needs sequences whose midpoints hide deletion cost.
    // Search a small family for a violation to keep the witness robust.
    let d = Eged;
    let seqs: Vec<Vec<f64>> = vec![
        vec![0.0],
        vec![0.0, 2.0],
        vec![0.0, 2.0, 2.0, 2.0],
        vec![1.0, 1.0],
        vec![2.0, 2.0, 3.0],
        vec![0.0, 10.0],
        vec![10.0],
        vec![0.0, 10.0, 0.0],
        vec![5.0, 5.0, 5.0],
    ];
    let mut violated = false;
    for a in &seqs {
        for b in &seqs {
            for c in &seqs {
                let ac: f64 = d.distance(a, c);
                let ab: f64 = d.distance(a, b);
                let bc: f64 = d.distance(b, c);
                if ac > ab + bc + 1e-9 {
                    violated = true;
                }
            }
        }
    }
    assert!(
        violated,
        "non-metric EGED should violate the triangle inequality somewhere"
    );
}
