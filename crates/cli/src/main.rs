//! `strgdb` — command-line front end for the STRG-Index video database.

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match strg_cli::run(&argv) {
        // Tolerate a closed pipe (e.g. `strgdb help | head`).
        Ok(out) => {
            let _ = writeln!(std::io::stdout(), "{out}");
        }
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "{e}");
            std::process::exit(1);
        }
    }
}
