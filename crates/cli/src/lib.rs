//! Command implementations of the `strgdb` CLI.
//!
//! The binary is a thin wrapper over these functions so that every command
//! is unit-testable. The database file format is `strg-core`'s STRGDB v1
//! (see `strg_core::persist`).
//!
//! JSON output goes through `strg_serve::wire` — the same renderers the
//! query server uses — so `--json` bodies and server `result` bodies are
//! byte-identical by construction (DESIGN.md §11). `serve` runs the
//! long-lived server; `send` is the matching one-shot client for
//! scripting.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

use strg_core::{Database, DbOptions, Query};
use strg_graph::Point2;
use strg_serve::{wire, ServeConfig, Server};

/// A CLI error: message for the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

/// Result alias for command functions; `Ok` carries the text to print.
pub type CmdResult = Result<String, CliError>;

/// Usage text.
pub const USAGE: &str = "\
strgdb — STRG-Index video database CLI

USAGE:
  strgdb ingest --db <path> --scene <lab|traffic> --name <name>
                [--actors N] [--frames N] [--seed N] [--shards N] [--json]
  strgdb query  --db <path> --from <x,y> --to <x,y> [--steps N]
                [-k N | --radius R] [--clip <name>] [--json]
  strgdb query  --db <path> --batch-file <file> [--json]
  strgdb stats  --db <path> [--json]
  strgdb clips  --db <path>
  strgdb remove --db <path> --clip <name>
  strgdb serve  --db <path> [--port N] [--max-queue N] [--port-file <file>]
                [--shards N] [--coalesce-ms N] [--max-batch N]
  strgdb send   --addr <host:port> --req '<json request line>'

Creates <path> on first ingest; later commands load and (for mutations)
rewrite it. `--shards N` (first ingest/serve on a fresh path) creates a
sharded database — a directory of N independent STRG-Index trees behind
deterministic hash-of-name clip routing; an existing database keeps its
on-disk shard count. `--json` switches ingest/query/stats to
machine-readable output, including the per-query cost record and the
database's metrics snapshot (same serialization as
`VideoDatabase::metrics_snapshot`). `serve` answers the same shapes over
newline-delimited JSON on TCP (port 0 picks an ephemeral port;
`--port-file` records the bound address); `send` writes one request line
and prints the response. `--batch-file` executes many queries in one
index traversal: one JSON object per line (`{\"from\":\"x,y\",
\"to\":\"x,y\",\"steps\":N,\"k\":N|\"radius\":R,\"clip\":name}` — the
same grammar as the server's `query_batch` elements; blank lines and
`#` comments skipped), each answered byte-identically to running it
alone. `serve --coalesce-ms N` groups single queries arriving within the
window into one batched execution (`--max-batch` caps the width).";

/// Simple `--flag value` argument map.
pub struct Args<'a> {
    rest: &'a [String],
}

/// True when `s` is a flag token rather than a value: `--long` or a short
/// `-x` switch. A lone `-` and negative numbers (`-5,3`) are values.
fn looks_like_flag(s: &str) -> bool {
    s.starts_with("--") || (s.len() > 1 && s.starts_with('-') && !s.as_bytes()[1].is_ascii_digit())
}

impl<'a> Args<'a> {
    /// Wraps the argument slice (without the subcommand).
    pub fn new(rest: &'a [String]) -> Self {
        Self { rest }
    }

    /// The value after `flag`. Absence is `Ok(None)`; a flag that is
    /// present but has nothing after it — or is followed by another flag
    /// token rather than a value (`serve --port --max-queue 5`) — is an
    /// error, not a silent absence (otherwise `strgdb query ... -k` would
    /// quietly fall back to the default instead of telling the user their
    /// value went missing).
    pub fn get(&self, flag: &str) -> Result<Option<&'a str>, CliError> {
        match self.rest.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match self.rest.get(i + 1) {
                Some(v) if !looks_like_flag(v) => Ok(Some(v.as_str())),
                _ => Err(CliError(format!("flag {flag} expects a value"))),
            },
        }
    }

    /// True when the bare switch `flag` appears (no value expected).
    pub fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Required flag value.
    pub fn require(&self, flag: &str) -> Result<&'a str, CliError> {
        self.get(flag)?
            .ok_or_else(|| CliError(format!("missing required flag {flag}")))
    }

    /// Parsed optional flag with default.
    pub fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.get(flag)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad value for {flag}: {v:?}"))),
        }
    }
}

/// Opens (or creates) the database at `path` via [`strg_core::open`]: a
/// STRGDB v1 file loads as a single tree, a shard directory as a
/// [`strg_core::ShardedDatabase`] (its manifest's shard count wins), and a
/// fresh path creates whatever `--shards` asks for.
fn open_db(path: &str, args: &Args) -> Result<Box<dyn Database>, CliError> {
    let shards: usize = args.parse_or("--shards", 1)?;
    strg_core::open(path, DbOptions::new().shards(shards))
        .map_err(|e| CliError(format!("cannot open {path}: {e}")))
}

fn parse_point(s: &str) -> Result<Point2, CliError> {
    wire::parse_point(s).map_err(CliError)
}

/// `strgdb ingest`.
pub fn cmd_ingest(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    let scene_kind = args.require("--scene")?;
    let name = args.require("--name")?;
    let actors: usize = args.parse_or("--actors", 4)?;
    let frames: usize = args.parse_or("--frames", 120)?;
    let seed: u64 = args.parse_or("--seed", 0)?;

    let clip = wire::make_clip(scene_kind, name, actors, frames, seed).map_err(CliError)?;
    let db = open_db(db_path, args)?;
    if db.clip_names().iter().any(|n| n == name) {
        return Err(CliError(format!("clip {name:?} already exists")));
    }
    let report = db.ingest_clip(&clip, seed);
    db.save(Path::new(db_path))?;
    if args.has("--json") {
        return Ok(wire::ingest_json(
            name,
            clip.frame_count(),
            &report,
            db.metrics_snapshot().to_json(),
        )
        .render());
    }
    Ok(format!(
        "ingested {:?}: {} frames, {} objects, background {} regions -> {}",
        name,
        clip.frame_count(),
        report.objects,
        report.background_nodes,
        db_path
    ))
}

/// `strgdb query` with `--batch-file`: many queries, one index traversal
/// ([`Database::query_batch`]). The file holds one query-spec object per
/// line — the same grammar as the server's `query_batch` elements, parsed
/// by the same [`wire::parse_query_spec`] — so `--json` output is
/// byte-identical to the server's `query_batch` result body.
fn cmd_query_batch(args: &Args, db_path: &str, file: &str) -> CmdResult {
    for flag in ["--from", "--to", "--steps", "-k", "--radius", "--clip"] {
        if args.has(flag) {
            return Err(CliError(format!(
                "{flag} cannot be combined with --batch-file (put it in the file)"
            )));
        }
    }
    let text =
        std::fs::read_to_string(file).map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
    let mut specs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = strg_serve::json_parse::parse(line)
            .map_err(|e| CliError(format!("{file}:{}: {e}", ln + 1)))?;
        let strg_obs::Json::Object(pairs) = parsed else {
            return Err(CliError(format!(
                "{file}:{}: each line must be a JSON object",
                ln + 1
            )));
        };
        let spec = wire::parse_query_spec(&strg_serve::protocol::Params::new(&pairs))
            .map_err(|e| CliError(format!("{file}:{}: {}", ln + 1, e.message)))?;
        specs.push(spec);
    }
    if specs.is_empty() {
        return Err(CliError(format!("{file} holds no queries")));
    }
    let db = open_db(db_path, args)?;
    let trajectories: Vec<_> = specs.iter().map(|s| s.trajectory()).collect();
    let queries: Vec<Query<'_>> = specs
        .iter()
        .zip(&trajectories)
        .map(|(s, t)| s.to_query(t))
        .collect();
    let results = db.query_batch(&queries);
    if args.has("--json") {
        return Ok(wire::query_batch_json(&results).render());
    }
    let mut out = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "query {}:", i + 1);
        if r.hits.is_empty() {
            let _ = writeln!(out, "  no results");
        } else {
            for h in &r.hits {
                let _ = writeln!(out, "  {:<12} {:>6} {:>12.1}", h.clip, h.og_id, h.dist);
            }
        }
        let cost = r.cost.as_ref().expect("batch queries request cost");
        let _ = writeln!(
            out,
            "  ({} distance calls, {} node accesses, {} pruned, {} batch-shared)",
            cost.distance_calls, cost.node_accesses, cost.pruned, cost.batch_shared_accesses
        );
    }
    Ok(out.trim_end().to_string())
}

/// `strgdb query`.
pub fn cmd_query(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    if let Some(file) = args.get("--batch-file")? {
        return cmd_query_batch(args, db_path, file);
    }
    let from = parse_point(args.require("--from")?)?;
    let to = parse_point(args.require("--to")?)?;
    let steps: usize = args.parse_or("--steps", 30)?;
    if steps < 2 {
        return Err(CliError("--steps must be at least 2".into()));
    }
    let radius: Option<f64> = match args.get("--radius")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError(format!("bad value for --radius: {v:?}")))?,
        ),
    };
    if radius.is_some() && args.get("-k")?.is_some() {
        return Err(CliError(
            "give -k (knn) or --radius (range), not both".into(),
        ));
    }
    let k: usize = args.parse_or("-k", 5)?;

    let db = open_db(db_path, args)?;
    let query = wire::lerp_trajectory(from, to, steps);
    let mut q = match radius {
        Some(r) => Query::range(r),
        None => Query::knn(k),
    }
    .trajectory(&query)
    .with_cost();
    if let Some(clip) = args.get("--clip")? {
        q = q.in_clip(clip);
    }
    let result = db.query(q);
    if args.has("--json") {
        return Ok(wire::query_json(&result).render());
    }
    if result.hits.is_empty() {
        return Ok("no results".into());
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:>6} {:>12}", "clip", "og", "distance");
    for h in &result.hits {
        let _ = writeln!(out, "{:<12} {:>6} {:>12.1}", h.clip, h.og_id, h.dist);
    }
    let cost = result.cost.expect("with_cost() requested it");
    let _ = write!(
        out,
        "({} distance calls, {} node accesses, {} pruned, {} lb-pruned, {} early-abandoned)",
        cost.distance_calls, cost.node_accesses, cost.pruned, cost.lb_pruned, cost.early_abandoned
    );
    Ok(out.trim_end().to_string())
}

/// `strgdb stats`.
pub fn cmd_stats(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    let db = open_db(db_path, args)?;
    let s = db.stats();
    if args.has("--json") {
        return Ok(wire::stats_json(
            &s,
            &db.shard_stats(),
            &db.persist_info(),
            db.metrics_snapshot().to_json(),
        )
        .render());
    }
    // Cumulative kernel counters for this process's queries (counters are
    // in-memory, so a freshly loaded database reports zeros).
    let snap = db.metrics_snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let calls = c("query.knn.distance_calls") + c("query.range.distance_calls");
    let lb = c("query.knn.lb_pruned") + c("query.range.lb_pruned");
    let ea = c("query.knn.early_abandoned") + c("query.range.early_abandoned");
    let p = db.persist_info();
    let mut out = format!(
        "clips {}  objects {}  clusters {}  raw-STRG {} B  index {} B ({:.1}x smaller)\n\
         persist: format v{} reopen {}\n\
         kernels: {} distance calls, {} lb-pruned, {} early-abandoned (cumulative)",
        s.clips,
        s.objects,
        s.clusters,
        s.strg_bytes,
        s.index_bytes,
        s.strg_bytes as f64 / s.index_bytes.max(1) as f64,
        p.format(),
        p.reopen.as_str(),
        calls,
        lb,
        ea,
    );
    // A sharded database also reports its per-shard breakdown.
    if db.shard_count() > 1 {
        for (i, ss) in db.shard_stats().iter().enumerate() {
            let _ = write!(
                out,
                "\nshard {i}: clips {}  objects {}  clusters {}",
                ss.clips, ss.objects, ss.clusters
            );
        }
    }
    Ok(out)
}

/// `strgdb clips`.
pub fn cmd_clips(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    let db = open_db(db_path, args)?;
    let names = db.clip_names();
    if names.is_empty() {
        return Ok("no clips".into());
    }
    Ok(names.join("\n"))
}

/// `strgdb remove`.
pub fn cmd_remove(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    let clip = args.require("--clip")?;
    let db = open_db(db_path, args)?;
    match db.remove_clip(clip) {
        Some(n) => {
            db.save(Path::new(db_path))?;
            Ok(format!("removed {clip:?} ({n} objects)"))
        }
        None => Err(CliError(format!("unknown clip {clip:?}"))),
    }
}

/// `strgdb serve`: the long-running query server (DESIGN.md §11).
///
/// Binds `127.0.0.1:<--port>` (default 4321; port 0 picks an ephemeral
/// port), optionally records the bound address into `--port-file` for
/// scripting, prints a banner, and blocks until a `shutdown` request
/// arrives. Worker-pool size follows `STRG_THREADS`.
pub fn cmd_serve(args: &Args) -> CmdResult {
    let db_path = args.require("--db")?;
    let port: u16 = args.parse_or("--port", 4321)?;
    let max_queue: usize = args.parse_or("--max-queue", 64)?;
    if max_queue == 0 {
        return Err(CliError("--max-queue must be at least 1".into()));
    }
    let max_batch: usize = args.parse_or("--max-batch", 256)?;
    if max_batch == 0 {
        return Err(CliError("--max-batch must be at least 1".into()));
    }
    let coalesce_ms: u64 = args.parse_or("--coalesce-ms", 0)?;
    let db = open_db(db_path, args)?;
    let cfg = ServeConfig {
        max_queue,
        db_path: Some(db_path.to_string()),
        max_batch,
        coalesce_window: (coalesce_ms > 0).then(|| std::time::Duration::from_millis(coalesce_ms)),
        ..Default::default()
    };
    let server = Server::bind_shared(("127.0.0.1", port), std::sync::Arc::from(db), cfg)
        .map_err(|e| CliError(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let addr = server.local_addr();
    if let Some(path) = args.get("--port-file")? {
        std::fs::write(path, format!("{addr}\n"))?;
    }
    // Print before blocking so scripts piping stdout learn the address.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "strgdb serving {db_path} on {addr}");
    let _ = stdout.flush();
    server.run()?;
    Ok("server stopped".into())
}

/// `strgdb send`: one-shot protocol client — writes one request line to a
/// running server and prints the response line.
pub fn cmd_send(args: &Args) -> CmdResult {
    let addr = args.require("--addr")?;
    let req = args.require("--req")?;
    if req.contains('\n') {
        return Err(CliError("--req must be a single line".into()));
    }
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    stream.write_all(req.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    if line.is_empty() {
        return Err(CliError(
            "server closed the connection without a response".into(),
        ));
    }
    Ok(line.trim_end().to_string())
}

/// Dispatches a full argument vector (without argv[0]).
pub fn run(argv: &[String]) -> CmdResult {
    let Some(cmd) = argv.first() else {
        return Err(CliError(USAGE.into()));
    };
    let args = Args::new(&argv[1..]);
    match cmd.as_str() {
        "ingest" => cmd_ingest(&args),
        "query" => cmd_query(&args),
        "stats" => cmd_stats(&args),
        "clips" => cmd_clips(&args),
        "remove" => cmd_remove(&args),
        "serve" => cmd_serve(&args),
        "send" => cmd_send(&args),
        "help" | "--help" | "-h" => Ok(USAGE.into()),
        other => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_db(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("strgdb_cli_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn args_parsing() {
        let raw = v(&["--db", "x.db", "-k", "7", "--json"]);
        let a = Args::new(&raw);
        assert_eq!(a.get("--db").unwrap(), Some("x.db"));
        assert_eq!(a.parse_or("-k", 5).unwrap(), 7);
        assert_eq!(a.parse_or("--steps", 30).unwrap(), 30);
        assert!(a.require("--nope").is_err());
        assert!(a.parse_or::<usize>("--db", 1).is_err());
        assert!(a.has("--json"));
        assert!(!a.has("--quiet"));
    }

    /// Regression: a flag sitting at the end of the argument list with no
    /// value used to be indistinguishable from an absent flag, so
    /// `parse_or` silently returned the default. It must be an error.
    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let raw = v(&["--db", "x.db", "-k"]);
        let a = Args::new(&raw);
        assert!(a.get("-k").is_err());
        assert!(a.parse_or("-k", 5usize).is_err());
        assert!(a.require("-k").is_err());
        // A present-and-valued flag still parses.
        assert_eq!(a.require("--db").unwrap(), "x.db");
        // And a genuinely absent flag still falls back to the default.
        assert_eq!(a.parse_or("--steps", 30usize).unwrap(), 30);
    }

    /// Regression (PR 6): serve-mode flags must share that error path. A
    /// flag directly followed by *another flag* used to swallow the flag
    /// token as its value (`serve --port --max-queue 5` parsed as
    /// `--port="--max-queue"`); it must be the same "expects a value"
    /// error as the trailing case.
    #[test]
    fn flag_followed_by_flag_is_an_error() {
        let raw = v(&["--db", "x.db", "--port", "--max-queue", "5"]);
        let a = Args::new(&raw);
        let err = a.get("--port").unwrap_err();
        assert!(err.0.contains("--port expects a value"), "{err}");
        assert_eq!(a.parse_or("--max-queue", 64usize).unwrap(), 5);
        // Negative numbers are values, not flags.
        let raw = v(&["--from", "-5,3", "--to", "-1,-2"]);
        let a = Args::new(&raw);
        assert_eq!(a.get("--from").unwrap(), Some("-5,3"));
        assert_eq!(a.get("--to").unwrap(), Some("-1,-2"));
        // A lone dash is a value (conventionally stdin), `-k` is a flag.
        assert!(!looks_like_flag("-"));
        assert!(looks_like_flag("-k"));
        assert!(looks_like_flag("--radius"));
        assert!(!looks_like_flag("-9"));
    }

    #[test]
    fn serve_flag_validation() {
        // The serve flags go through the same strict Args layer.
        assert!(run(&v(&["serve", "--db", "x.db", "--port"])).is_err());
        assert!(run(&v(&["serve", "--db", "x.db", "--port", "70000"])).is_err());
        assert!(run(&v(&["serve", "--db", "x.db", "--max-queue", "0"])).is_err());
        assert!(run(&v(&["send", "--addr"])).is_err());
        assert!(run(&v(&["send", "--addr", "127.0.0.1:1", "--req", "a\nb"])).is_err());
    }

    #[test]
    fn parse_points() {
        assert_eq!(parse_point("3,4").unwrap(), Point2::new(3.0, 4.0));
        assert_eq!(parse_point(" 3.5 , -4 ").unwrap(), Point2::new(3.5, -4.0));
        assert!(parse_point("35").is_err());
        assert!(parse_point("a,b").is_err());
    }

    #[test]
    fn full_cli_lifecycle() {
        let db = temp_db("lifecycle");
        let _ = std::fs::remove_file(&db);

        let out = run(&v(&[
            "ingest", "--db", &db, "--scene", "lab", "--name", "cam1", "--actors", "2", "--frames",
            "50", "--seed", "3",
        ]))
        .expect("ingest");
        assert!(out.contains("ingested"), "{out}");

        let out = run(&v(&["stats", "--db", &db])).expect("stats");
        assert!(out.contains("clips 1"), "{out}");

        let out = run(&v(&["clips", "--db", &db])).expect("clips");
        assert_eq!(out, "cam1");

        let out = run(&v(&[
            "query", "--db", &db, "--from", "0,80", "--to", "160,80", "-k", "3",
        ]))
        .expect("query");
        assert!(out.contains("cam1"), "{out}");
        assert!(out.contains("lb-pruned"), "{out}");
        assert!(out.contains("early-abandoned"), "{out}");

        // Duplicate name rejected.
        assert!(run(&v(&[
            "ingest", "--db", &db, "--scene", "lab", "--name", "cam1",
        ]))
        .is_err());

        // JSON mode: structured output with the query cost and metrics.
        let out = run(&v(&[
            "query", "--db", &db, "--from", "0,80", "--to", "160,80", "-k", "3", "--json",
        ]))
        .expect("query --json");
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"hits\""), "{out}");
        assert!(out.contains("\"distance_calls\""), "{out}");
        assert!(out.contains("\"lb_pruned\""), "{out}");
        assert!(out.contains("\"early_abandoned\""), "{out}");

        let out = run(&v(&["stats", "--db", &db])).expect("stats text");
        assert!(out.contains("kernels:"), "{out}");

        let out = run(&v(&["stats", "--db", &db, "--json"])).expect("stats --json");
        assert!(out.contains("\"clips\":1"), "{out}");
        assert!(out.contains("\"metrics\""), "{out}");

        let out = run(&v(&["remove", "--db", &db, "--clip", "cam1"])).expect("remove");
        assert!(out.contains("removed"), "{out}");
        let out = run(&v(&["clips", "--db", &db])).expect("clips");
        assert_eq!(out, "no clips");

        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn range_query_mode() {
        let db = temp_db("range");
        let _ = std::fs::remove_file(&db);
        run(&v(&[
            "ingest", "--db", &db, "--scene", "lab", "--name", "cam1", "--actors", "2", "--frames",
            "50", "--seed", "3",
        ]))
        .expect("ingest");

        // A huge radius catches everything; the JSON shape matches knn's.
        let out = run(&v(&[
            "query", "--db", &db, "--from", "0,80", "--to", "160,80", "--radius", "1e9", "--json",
        ]))
        .expect("query --radius");
        assert!(out.starts_with("{\"hits\":["), "{out}");
        assert!(out.contains("\"cost\""), "{out}");
        assert!(out.contains("cam1"), "{out}");

        // knn and range are mutually exclusive.
        let err = run(&v(&[
            "query", "--db", &db, "--from", "0,80", "--to", "160,80", "-k", "3", "--radius", "10",
        ]));
        assert!(err.is_err());

        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn serve_and_send_roundtrip() {
        let db = temp_db("serve");
        let pf = temp_db("serve_port");
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&pf);

        let db2 = db.clone();
        let pf2 = pf.clone();
        let server = std::thread::spawn(move || {
            run(&v(&[
                "serve",
                "--db",
                &db2,
                "--port",
                "0",
                "--max-queue",
                "4",
                "--port-file",
                &pf2,
            ]))
        });
        // Wait for the port file to appear.
        let addr = {
            let mut addr = String::new();
            for _ in 0..500 {
                if let Ok(s) = std::fs::read_to_string(&pf) {
                    if s.trim().parse::<std::net::SocketAddr>().is_ok() {
                        addr = s.trim().to_string();
                        break;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(!addr.is_empty(), "server never wrote its port file");
            addr
        };

        let out = run(&v(&[
            "send",
            "--addr",
            &addr,
            "--req",
            r#"{"id":9,"method":"ping"}"#,
        ]))
        .expect("send ping");
        assert_eq!(out, r#"{"ok":true,"id":9,"result":"pong"}"#);

        let out = run(&v(&[
            "send",
            "--addr",
            &addr,
            "--req",
            r#"{"method":"shutdown"}"#,
        ]))
        .expect("send shutdown");
        assert!(out.contains("shutting down"), "{out}");

        let stopped = server
            .join()
            .unwrap()
            .expect("serve returns after shutdown");
        assert_eq!(stopped, "server stopped");
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&pf);
    }

    #[test]
    fn unknown_command_and_usage() {
        assert!(run(&v(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&v(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn bad_scene_rejected() {
        let db = temp_db("badscene");
        let err = run(&v(&[
            "ingest", "--db", &db, "--scene", "mars", "--name", "x",
        ]));
        assert!(err.is_err());
    }
}
