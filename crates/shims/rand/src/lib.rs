//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container that builds this repo has no network access to
//! crates.io, so the workspace vendors a tiny, dependency-free
//! implementation with the same method names and generic signatures:
//!
//! * [`rngs::StdRng`] — a deterministic `xoshiro256**` generator,
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`],
//! * [`thread_rng`] / [`random`].
//!
//! The streams differ from upstream `rand` (no ChaCha here), but every
//! consumer in this repo seeds explicitly and only relies on *determinism*,
//! not on a particular stream.

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a fixed-size byte array or a
/// single `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded with SplitMix64
    /// exactly like upstream `rand` expands small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from OS-independent entropy (the current time).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Values producible uniformly at random by [`Rng::gen`].
pub trait StandardValue {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as StandardValue>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as StandardValue>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (floats in [0, 1)).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardValue>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic `xoshiro256**` generator: the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            Self { s }
        }
    }

    /// Alias used by callers that spell out the small generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice shuffling and sampling.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A fresh time-seeded generator (no thread-local caching — callers in this
/// repo only use it for non-reproducible smoke paths).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

/// One value from a fresh time-seeded generator.
pub fn random<T: StandardValue>() -> T {
    T::draw(&mut thread_rng())
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
