//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`RwLock`] and [`Mutex`] whose lock methods return guards directly
//! (no `Result`), built on the std primitives with poison recovery.
//!
//! A thread panicking while holding a std lock poisons it; `parking_lot`
//! locks never poison. The shim matches that behavior by unwrapping
//! poison errors into the inner guard.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access; blocks until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Exclusive write access; blocks until the lock is free.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Non-blocking read access.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write access.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Exclusive access; blocks until the lock is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Non-blocking exclusive access.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_survives_poison() {
        let l = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: still usable after a panicking writer.
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert!(m.try_lock().is_some());
    }
}
