//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build container has no crates.io access, so the
//! workspace vendors a tiny property-testing engine with the same surface:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`,
//! * range and tuple strategies, [`prop::collection::vec`], [`strategy::Just`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking — a failing case reports its
//! deterministic case index and seed instead of a minimized input, and the
//! random streams differ from upstream proptest. Every run of a given test
//! binary explores the same deterministic sequence of cases.

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }

        /// Alias used by upstream's `prop_assume!`; treated as a failure
        /// message here.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Subset of upstream's `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case number `case` (stable across runs).
        pub fn for_case(case: u64) -> Self {
            Self {
                state: case
                    .wrapping_mul(0x2545f4914f6cdd1d)
                    .wrapping_add(0x9e3779b97f4a7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn index(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (retries; upstream rejects).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec` etc.).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Vectors of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.index(self.size.start, self.size.end)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The property-test entry point: same syntax as upstream `proptest!`.
///
/// Differences: failures are reported with the deterministic case index
/// (no shrinking), and generated inputs are not echoed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                // Bind each strategy once, named after its argument; the
                // per-case `let` below shadows it with a sampled value.
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&$arg, &mut __rng);)+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest case #{} of {} failed: {}",
                            __case, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fails the
/// current case without aborting the whole process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(left, right)` with optional context message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -5isize..5, f in -1.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..4, 0u8..4).prop_map(|(a, b)| a + b), 0..6),
        ) {
            prop_assert!(v.len() < 6);
            for x in &v {
                prop_assert!(*x <= 6, "sum of two values < 4 each: {x}");
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0.0f64..10.0, 0usize..100);
        let a: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        // The macro above only *defines* fns when used at item position;
        // at statement position it also defines them — call explicitly.
        always_fails();
    }
}
