//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. The build container has no crates.io access,
//! so the workspace vendors a minimal timing harness with the same
//! surface: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! runs batches until `measurement_time` elapses and reports the mean
//! time per iteration. Under `cargo test` (no `--bench` argument) every
//! benchmark body executes **once** so bench targets double as smoke
//! tests without slowing the suite down; passing `--bench` (as
//! `cargo bench` does) or setting `STRG_BENCH_FULL=1` enables real
//! measurement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether full measurement was requested (vs. smoke mode).
fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
        || std::env::var("STRG_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// The benchmark harness: collects and times benchmark closures.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            sample_size: 10,
            full: full_measurement(),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the nominal sample count (kept for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Upstream reads CLI flags here; the shim already did in `default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        full: c.full,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        eprintln!(
            "bench: {name:<40} {:>12.1} ns/iter ({} iters{})",
            b.mean_ns,
            b.iters,
            if b.full { "" } else { ", smoke" }
        );
    }
}

/// A named collection of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(self.c, &full, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(self.c, &full, |b| f(b, input));
        self
    }

    /// Overrides the sample count for this group (API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement = d;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (accepts strings and ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Times a closure passed to [`Bencher::iter`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    full: bool,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.full {
            // Smoke mode: execute once for correctness, skip measurement.
            black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(f());
        }
        // Measurement: batches of geometrically growing size.
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut batch: u64 = 1;
        while total_time < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_time += t0.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = total_iters;
        self.mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
    }

    /// `iter_batched` with per-iteration setup (API compatibility).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter(|| {
            let input = setup();
            routine(input)
        });
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Declares a group of benchmark targets, as upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_function(BenchmarkId::new("a", 1), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(10);
        targets = target
    }

    #[test]
    fn harness_runs_all_targets() {
        benches();
    }
}
