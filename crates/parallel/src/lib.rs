//! Deterministic fork/join helpers built on `std::thread::scope`.
//!
//! The STRG pipeline has three embarrassingly parallel hot paths — frame →
//! RAG extraction, the pairwise EGED distance matrix inside clustering, and
//! candidate-distance evaluation during index search. All three are
//! `map`-shaped: independent per-item work whose results are consumed in
//! input order. This crate provides exactly that shape and nothing more:
//!
//! * [`par_map`] / [`par_map_indexed`] split the input into one contiguous
//!   chunk per worker, run the chunks on scoped threads, and concatenate the
//!   chunk outputs **in chunk order**. The result vector is therefore
//!   identical to a sequential `iter().map().collect()` — same values, same
//!   order — no matter how many threads ran. Any reduction a caller performs
//!   over that vector happens on the caller's thread in index order, so
//!   float accumulation order (and hence the bits of the result) cannot
//!   drift with the thread count.
//! * [`Threads`] is the knob every configurable layer exposes: `Auto`
//!   consults the `STRG_THREADS` environment variable and falls back to
//!   [`std::thread::available_parallelism`]; `Fixed(n)` pins the count, and
//!   `Fixed(1)` runs the plain sequential loop on the calling thread —
//!   the retained sequential path behind the same API.
//!
//! No work stealing, no channels, no unsafe, no dependencies.

use std::any::Any;
use std::num::NonZeroUsize;
use std::thread;

/// Environment variable consulted by [`Threads::Auto`].
pub const THREADS_ENV: &str = "STRG_THREADS";

/// Worker-count policy for the parallel helpers.
///
/// `Auto` resolves at call time: the `STRG_THREADS` environment variable if
/// set to a positive integer, otherwise [`std::thread::available_parallelism`].
/// `Fixed(n)` ignores the environment; `Fixed(1)` (and `Fixed(0)`) select the
/// sequential code path on the calling thread.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Threads {
    /// `STRG_THREADS` env var, else the machine's available parallelism.
    #[default]
    Auto,
    /// Exactly this many workers (`<= 1` means sequential).
    Fixed(usize),
}

impl Threads {
    /// The number of workers this policy selects right now (always `>= 1`).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => match std::env::var(THREADS_ENV) {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => available(),
                },
                Err(_) => available(),
            },
        }
    }

    /// Convenience: does this policy resolve to the sequential path?
    pub fn is_sequential(self) -> bool {
        self.resolve() <= 1
    }
}

fn available() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items`, returning outputs in input order.
///
/// With `threads <= 1` (or fewer than two items) this is a plain sequential
/// loop on the calling thread. Otherwise the slice is split into one
/// contiguous chunk per worker and the per-chunk outputs are concatenated in
/// chunk order, so the result is element-for-element identical to the
/// sequential run. A panic on any worker is re-raised on the caller.
pub fn par_map<T, R, F>(items: &[T], threads: Threads, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item))
}

/// [`par_map`] variant whose closure also receives the item's index.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: Threads, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, item| f(i, item)).0
}

/// [`par_map_indexed`] with per-worker scratch state.
///
/// Each worker calls `init` exactly once before touching its chunk and
/// threads the resulting state (by `&mut`) through every item it maps, so
/// expensive buffers are allocated once per *worker* instead of once per
/// *item*. The sequential path (`threads <= 1` or fewer than two items)
/// creates a single state on the calling thread. Returns the outputs in
/// input order — element-for-element identical to a sequential run, exactly
/// like [`par_map`] — plus the final worker states in chunk order, so
/// callers can harvest scratch statistics (e.g. arena sizes) after the
/// fan-out. The state must not influence the outputs beyond what `f` writes
/// through it deterministically per item; a panic on any worker is
/// re-raised on the caller.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: Threads, init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 {
        let mut state = init();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
        return (out, vec![state]);
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    let init = &init;
    let chunk_results: Vec<thread::Result<(Vec<R>, S)>> = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk;
                scope.spawn(move || {
                    let mut state = init();
                    let out = slice
                        .iter()
                        .enumerate()
                        .map(|(j, item)| f(&mut state, base + j, item))
                        .collect::<Vec<R>>();
                    (out, state)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut states = Vec::with_capacity(workers);
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for res in chunk_results {
        match res {
            Ok((mut part, state)) => {
                out.append(&mut part);
                states.push(state);
            }
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    (out, states)
}

/// Runs `f` over the index range `0..n`, returning outputs in index order.
///
/// Useful when the per-item work reads shared state by index rather than
/// through a slice (e.g. a distance matrix addressed by row).
pub fn par_map_range<R, F>(n: usize, threads: Threads, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // A unit slice per index keeps the chunking/merging logic in one place.
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, threads, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let got = par_map(&items, Threads::Fixed(threads), |x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_global_indices() {
        let items = vec!["a"; 37];
        let got = par_map_indexed(&items, Threads::Fixed(4), |i, _| i);
        assert_eq!(got, (0..37).collect::<Vec<_>>());
        let got = par_map_range(37, Threads::Fixed(4), |i| i * 2);
        assert_eq!(got, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..512).map(|i| (i as f64).sin() * 1e3).collect();
        let seq = par_map(&items, Threads::Fixed(1), |x| x.sqrt().abs().ln_1p());
        for threads in [2, 5, 8] {
            let par = par_map(&items, Threads::Fixed(threads), |x| x.sqrt().abs().ln_1p());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, Threads::Fixed(8), |x| *x).is_empty());
        assert_eq!(par_map(&[7], Threads::Fixed(8), |x| x + 1), vec![8]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        // A tiny sleep keeps early workers alive until late spawns happen.
        par_map(&items, Threads::Fixed(4), |_| {
            seen.lock().unwrap().insert(thread::current().id());
            thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected multiple worker threads"
        );
    }

    #[test]
    fn with_state_initializes_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 4] {
            inits.store(0, Ordering::SeqCst);
            let (out, states) = par_map_with(
                &items,
                Threads::Fixed(threads),
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize // per-worker item counter
                },
                |count, i, x| {
                    *count += 1;
                    (i as u32) + x
                },
            );
            assert_eq!(out, (0..40).map(|i| 2 * i).collect::<Vec<_>>());
            assert_eq!(inits.load(Ordering::SeqCst), threads, "one init per worker");
            assert_eq!(states.len(), threads);
            let mapped: usize = states.iter().sum();
            assert_eq!(mapped, items.len(), "every item went through a state");
        }
    }

    #[test]
    fn with_state_empty_input_still_returns_one_state() {
        let empty: Vec<i32> = vec![];
        let (out, states) = par_map_with(&empty, Threads::Fixed(8), || 7, |s, _, x| *x + *s);
        assert!(out.is_empty());
        assert_eq!(states, vec![7]);
    }

    #[test]
    fn with_state_matches_sequential_at_any_thread_count() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64).cos() * 10.0).collect();
        let run = |threads| {
            par_map_with(
                &items,
                Threads::Fixed(threads),
                Vec::<f64>::new,
                |scratch, _, x| {
                    // Scratch reuse must not leak state between items.
                    scratch.clear();
                    scratch.push(x * x);
                    scratch[0].sqrt()
                },
            )
            .0
        };
        let seq = run(1);
        for threads in [2, 3, 8] {
            let par = run(threads);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn sequential_path_stays_on_calling_thread() {
        let caller = thread::current().id();
        par_map(&[1, 2, 3], Threads::Fixed(1), |_| {
            assert_eq!(thread::current().id(), caller);
        });
    }

    #[test]
    fn worker_panics_propagate_and_threads_are_joined() {
        let completed = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, Threads::Fixed(4), |&x| {
                if x == 5 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "panic must surface to the caller");
        // The panicking worker abandons the rest of its chunk, but every
        // other chunk runs to completion (scope joins every worker).
        assert!(completed.load(Ordering::SeqCst) >= 12);
    }

    #[test]
    fn fixed_counts_resolve_without_env() {
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert_eq!(Threads::Fixed(1).resolve(), 1);
        assert_eq!(Threads::Fixed(9).resolve(), 9);
        assert!(Threads::Fixed(1).is_sequential());
        assert!(!Threads::Fixed(2).is_sequential());
    }

    // Env-var tests mutate process state; keep them in one test so they
    // cannot race each other under the parallel test runner.
    #[test]
    fn auto_reads_env_knob() {
        std::env::set_var(THREADS_ENV, "7");
        assert_eq!(Threads::Auto.resolve(), 7);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(Threads::Auto.resolve() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Threads::Auto.resolve() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Threads::Auto.resolve() >= 1);
    }
}
