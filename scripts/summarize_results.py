#!/usr/bin/env python3
"""Summarize results/*.csv into compact paper-vs-measured lines.

Helper for updating EXPERIMENTS.md after `figures -- all` and `ablation`
runs; prints one block per experiment.
"""
import csv
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def rows(name):
    path = os.path.join(RESULTS, name)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def fig5():
    data = rows("fig5_error_rates.csv")
    if not data:
        return
    print("## fig5 (error rate % at lowest/highest noise)")
    for algo in ["EM", "KM", "KHM"]:
        line = [algo]
        for dist in ["EGED", "LCS", "DTW"]:
            pts = sorted(
                (float(r["noise_pct"]), float(r["error_rate_pct"]))
                for r in data
                if r["algo"] == algo and r["dist"] == dist
            )
            if pts:
                line.append(f"{dist} {pts[0][1]:.0f}->{pts[-1][1]:.0f}")
        print("  " + "  ".join(line))


def fig7():
    build = rows("fig7a_build.csv")
    knn = rows("fig7b_knn.csv")
    pr = rows("fig7c_pr.csv")
    if build:
        print("## fig7a (build seconds at largest DB)")
        biggest = max(int(r["db_size"]) for r in build)
        for r in build:
            if int(r["db_size"]) == biggest:
                print(f"  {r['method']}: {float(r['seconds']):.1f}s [{r['dist_calls']} calls]")
    if knn:
        print("## fig7b (distance calls per query, mean over k)")
        methods = sorted({r["method"] for r in knn})
        for m in methods:
            vals = [float(r["dist_calls_per_query"]) for r in knn if r["method"] == m]
            print(f"  {m}: {sum(vals)/len(vals):.0f}")
    if pr:
        print("## fig7c (precision at k=10)")
        for r in pr:
            if r["k"] == "10":
                print(f"  {r['method']}: P {float(r['precision']):.2f} R {float(r['recall']):.2f}")


def table2():
    data = rows("table2_clustering_size.csv")
    if not data:
        return
    print("## table2")
    for r in data:
        ratio = int(r["strg_bytes"]) / max(1, int(r["index_bytes"]))
        print(
            f"  {r['video']}: err {float(r['em_error_pct']):.1f}%"
            f"  K {r['found_k']}/{r['optimal_k']}  size ratio {ratio:.1f}x"
        )


if __name__ == "__main__":
    for fn in [fig5, fig7, table2]:
        fn()
        print()
    sys.exit(0)
