#!/usr/bin/env bash
# Full CI gate: formatting, lints, build, the whole test suite, and the
# parallel/sequential equivalence suite pinned to both extremes of the
# STRG_THREADS knob. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> sequential-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test parallel_equivalence

echo "==> sequential-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test parallel_equivalence

echo "==> observability-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test obs_equivalence

echo "==> observability-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test obs_equivalence

echo "==> kernel-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test kernel_equivalence

echo "==> kernel-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test kernel_equivalence

# The suite itself toggles STRG_SCALAR per test; running the whole binary
# once more under a *preset* hatch pins the env-inherited scalar mode too.
echo "==> kernel-equivalence suite under STRG_SCALAR=1"
STRG_SCALAR=1 cargo test -q --test kernel_equivalence

echo "==> bounded-kernel bench smoke (--quick)"
cargo run --release -p strg-bench --bin kernels -- --quick

echo "==> ingest-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test ingest_equivalence

echo "==> ingest-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test ingest_equivalence

echo "==> ingest allocation-discipline suite"
cargo test -q --test ingest_alloc

echo "==> ingest hot-path bench smoke (--quick, checks the 2x floor)"
cargo run --release -p strg-bench --bin ingest -- --quick

echo "==> shard-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test shard_equivalence

echo "==> shard-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test shard_equivalence

# The zero-alloc proof needs the hatch-free production configuration: a
# *set* hatch variable makes std::env::var allocate its String per read
# (the suite clears the hatches itself; STRG_THREADS is never read on the
# sequential Fixed(1) path, so both pins are exercised for free).
echo "==> query allocation-discipline suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test query_alloc

echo "==> query allocation-discipline suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test query_alloc

echo "==> query-path bench smoke (--quick, checks SIMD/arena vs scalar identity)"
cargo run --release -p strg-bench --bin query -- --quick

echo "==> query-cost bench smoke (--quick, checks shard fan-out pruning)"
cargo run --release -p strg-bench --bin costs -- --quick

echo "==> persistence-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test persist_equivalence

echo "==> persistence-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test persist_equivalence

echo "==> persistence fault-injection suite under STRG_THREADS=1"
STRG_THREADS=1 cargo test -q --test persist_faults

echo "==> persistence fault-injection suite under STRG_THREADS=8"
STRG_THREADS=8 cargo test -q --test persist_faults

echo "==> reopen-latency bench smoke (--quick, checks v1/v2 hit identity)"
cargo run --release -p strg-bench --bin persist -- --quick

echo "==> batch-equivalence suite under STRG_THREADS=1"
STRG_THREADS=1 timeout 600 cargo test -q --test batch_equivalence

echo "==> batch-equivalence suite under STRG_THREADS=8"
STRG_THREADS=8 timeout 600 cargo test -q --test batch_equivalence

# The suite itself toggles STRG_NO_BATCH per test; running the whole
# binary once more under a *preset* hatch pins the env-inherited
# sequential-fallback mode at every layer too.
echo "==> batch-equivalence suite under STRG_NO_BATCH=1"
STRG_NO_BATCH=1 timeout 600 cargo test -q --test batch_equivalence

echo "==> batched-query bench smoke (--quick, checks batched/sequential identity)"
cargo run --release -p strg-bench --bin batch -- --quick

# The serve suites talk to a real TCP server; `timeout` guards against a
# wedged worker or a lost response turning CI into an infinite hang (the
# suites' own per-read timeouts should fire long before this does).
echo "==> serve protocol + concurrency + fault suites under STRG_THREADS=1"
STRG_THREADS=1 timeout 600 cargo test -q --test serve_protocol --test serve_concurrency --test serve_faults

echo "==> serve protocol + concurrency + fault suites under STRG_THREADS=8"
STRG_THREADS=8 timeout 600 cargo test -q --test serve_protocol --test serve_concurrency --test serve_faults

echo "CI gate passed."
