//! # strg — STRG-Index for large video databases
//!
//! A from-scratch Rust reproduction of *STRG-Index: Spatio-Temporal Region
//! Graph Indexing for Large Video Databases* (Lee, Oh & Hwang, SIGMOD
//! 2005). This facade crate re-exports the whole workspace:
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`graph`] | §2 | RAG, STRG, isomorphism, `SimGraph`, tracking, ORG/OG/BG decomposition |
//! | [`video`] | §2.1 / §6.4 | synthetic camera + EDISON-stand-in segmentation |
//! | [`distance`] | §3 | EGED (non-metric + metric), DTW, LCS, Lp, call counting |
//! | [`cluster`] | §4 | EM / K-Means / K-Harmonic-Means, BIC model selection |
//! | [`mtree`] | §6.3 | the M-tree baseline (MT-RA / MT-SA) |
//! | [`obs`] | §6.3 cost model | lock-free metrics: counters, histograms, spans, `QueryCost` |
//! | [`parallel`] | — | deterministic fork/join helpers (`par_map`, the `STRG_THREADS` knob) |
//! | [`rtree`] | §1 | the 3DR-tree baseline (time as a third R-tree dimension) |
//! | [`synth`] | §6.1 | the 48-pattern synthetic trajectory workload |
//! | [`core`] | §5 | the STRG-Index tree and the [`prelude::VideoDatabase`] facade |
//! | [`serve`] | — | the concurrent k-NN query server (newline-delimited JSON over TCP) |
//!
//! ## Quickstart
//!
//! ```
//! use strg::prelude::*;
//!
//! // Build a tiny synthetic surveillance clip and index it.
//! let db = VideoDatabase::new(DbOptions::new());
//! let clip = VideoClip {
//!     name: "demo".into(),
//!     scene: lab_scene(&ScenarioConfig { n_actors: 2, frames: 40, seed: 7, ..Default::default() }),
//!     fps: 30.0,
//! };
//! let report = db.ingest_clip(&clip, 1);
//! assert!(report.objects >= 1);
//!
//! // Query by trajectory: the stored object finds itself.
//! let og = db.og(0).unwrap();
//! let result = db.query(Query::knn(1).trajectory(&og.centroid_series()).with_cost());
//! assert_eq!(result.hits[0].og_id, 0);
//! assert!(result.cost.unwrap().distance_calls >= 1);
//! ```

pub use strg_cluster as cluster;
pub use strg_core as core;
pub use strg_distance as distance;
pub use strg_graph as graph;
pub use strg_mtree as mtree;
pub use strg_obs as obs;
pub use strg_parallel as parallel;
pub use strg_rtree as rtree;
pub use strg_serve as serve;
pub use strg_synth as synth;
pub use strg_video as video;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use strg_cluster::{
        bic_sweep, clustering_error_rate, Clusterer, Clustering, EmClusterer, EmConfig, HardConfig,
        KHarmonicMeans, KMeans,
    };
    #[allow(deprecated)]
    pub use strg_core::VideoDbConfig;
    pub use strg_core::{
        open, Database, DbOptions, Hit, IngestReport, Metric, PersistInfo, Query, QueryBatch,
        QueryCost, QueryHit, QueryResult, Recorder, ReopenMode, ShardedDatabase, Snapshot,
        StrgIndex, StrgIndexConfig, VideoDatabase, FORMAT_VERSION, PERSIST_V1_ENV,
    };
    pub use strg_distance::{
        batching_enabled, lower_bounds_enabled, shard_bounds_enabled, simd_enabled,
        BoundedDistance, CountingDistance, Dtw, Edr, Eged, EgedMetric, Lcs, LowerBound, LpNorm,
        MetricDistance, SeqSummary, SequenceDistance, SummaryEnvelope, NO_BATCH_ENV, NO_LB_ENV,
        NO_SHARD_LB_ENV, SCALAR_ENV,
    };
    pub use strg_graph::{
        decompose, BackgroundGraph, DecomposeConfig, ObjectGraph, Point2, Rag, Rgb, Scalarization,
        Strg, TrackerConfig,
    };
    pub use strg_mtree::{MTree, MTreeConfig, PromotePolicy};
    pub use strg_parallel::{par_map, par_map_with, Threads};
    pub use strg_rtree::{Aabb3, RTree3};
    pub use strg_synth::{generate, generate_total, SynthConfig};
    pub use strg_video::{
        box_blur, frames_to_rags, frames_to_rags_with_stats, lab_scene, naive_segmentation_enabled,
        segment, segment_into, table1_clips, traffic_scene, ExtractStats, Frame, Pixel,
        ScenarioConfig, SegScratch, SegmentConfig, Segmentation, VideoClip, NAIVE_SEGMENT_ENV,
    };
}
