//! Batch equivalence suite: batched execution is a *physical* optimization
//! only.
//!
//! A batch of queries answered through one shared index traversal must be
//! indistinguishable from the same queries replayed one at a time in every
//! observable except wall clock: identical hit lists (ids **and** distance
//! bits) and identical logical [`QueryCost`] work fields, on a single
//! STRG-Index tree, across a sharded fan-out, through both `Database`
//! facades, and over the server socket. The `STRG_NO_BATCH=1` escape
//! hatch (which falls back to per-query sequential execution) must never
//! change a result — a divergence in the shared descent shows up here as
//! a hit-list or cost diff.
//!
//! The one documented exception is `QueryCost::batch_shared_accesses`:
//! it reports *physical* sharing (node accesses this query did not pay
//! for because a batch neighbor already walked the node), is excluded
//! from [`QueryCost::same_work`], and is zero under the hatch.
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1`,
//! `STRG_THREADS=8` and `STRG_NO_BATCH=1`, so the equivalence is pinned
//! against both the frozen parallel band and the hatch.

mod serve_util;

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use serve_util::*;
use strg::core::{
    sharded_knn_into, sharded_query_batch_into, sharded_range_into, BatchItem, BatchKind,
    BatchScratch, ShardBatchScratch, ShardScratch,
};
use strg::prelude::*;
use strg::serve::protocol::result_slice;
use strg::serve::{json_parse, wire, ServeConfig};

/// Serializes every test that reads or toggles `STRG_NO_BATCH`: the flag
/// is process global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — once with batching active, once with
/// `STRG_NO_BATCH=1` — and returns both results, restoring the
/// environment.
fn in_both_batch_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    let saved = std::env::var(NO_BATCH_ENV).ok();
    std::env::remove_var(NO_BATCH_ENV);
    assert!(batching_enabled());
    let batched = f();
    std::env::set_var(NO_BATCH_ENV, "1");
    assert!(!batching_enabled());
    let sequential = f();
    match saved {
        Some(v) => std::env::set_var(NO_BATCH_ENV, v),
        None => std::env::remove_var(NO_BATCH_ENV),
    }
    (batched, sequential)
}

fn dataset(n: usize, seed: u64) -> Vec<(u64, Vec<Point2>)> {
    generate_total(n, &SynthConfig::with_noise(0.10), seed)
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Vec<Point2>> {
    generate_total(n, &SynthConfig::with_noise(0.10), seed)
        .items
        .into_iter()
        .map(|q| q.points)
        .collect()
}

fn build_index(items: Vec<(u64, Vec<Point2>)>, seed: u64) -> StrgIndex<Point2, EgedMetric<Point2>> {
    let mut cfg = StrgIndexConfig::with_k(16.min(items.len().max(1)));
    cfg.seed = seed;
    cfg.em_max_iters = 8;
    cfg.em_n_init = 1;
    cfg.threads = Threads::Fixed(1);
    let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), cfg);
    idx.add_segment(BackgroundGraph::default(), items);
    idx
}

fn assert_hits_eq(a: &[Hit], b: &[Hit], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: hit count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.root_id, y.root_id, "{ctx}: hit root");
        assert_eq!(x.og_id, y.og_id, "{ctx}: hit id");
        assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{ctx}: hit distance");
    }
}

/// The mixed workload every index-level test runs: alternating k-NN and
/// range items, varying `k`, duplicate trajectories (the pool cycles) and
/// — when `roots` is non-empty — root-scoped items.
fn mixed_items<'a>(
    pool: &'a [Vec<Point2>],
    width: usize,
    radius: f64,
    roots: &[u32],
) -> Vec<BatchItem<'a, Point2>> {
    (0..width)
        .map(|i| {
            let kind = if i % 3 == 1 {
                BatchKind::Range(radius * (1.0 + (i % 2) as f64))
            } else {
                BatchKind::Knn(1 + i % 5)
            };
            BatchItem {
                kind,
                query: &pool[i % pool.len()],
                root_filter: (!roots.is_empty() && i % 4 == 3).then(|| roots[i % roots.len()]),
            }
        })
        .collect()
}

/// One batched descent over a single tree reproduces the sequential
/// replay bit for bit, at widths from a singleton batch to one dominated
/// by duplicates, with mixed k-NN/range kinds and root-scoped items.
#[test]
fn single_tree_batch_matches_sequential_replay() {
    let _guard = env_lock();
    let mut idx = build_index(dataset(120, 11), 5);
    let second_root = idx.add_segment(BackgroundGraph::default(), dataset(60, 47));
    let first_root = idx.roots()[0].id;
    let pool = queries(8, 999);
    let radius = idx.knn(&pool[0], 5).last().expect("warm hits").dist * 1.5;

    let mut scratch = BatchScratch::new();
    for width in [1usize, 2, 7, 64] {
        let items = mixed_items(&pool, width, radius, &[first_root, second_root]);
        idx.query_batch_with_cost_into(&items, &mut scratch);
        assert_eq!(scratch.len(), width);

        let mut shared_total = 0u64;
        for (i, it) in items.iter().enumerate() {
            let ctx = format!("width={width} item={i} {:?}", it.kind);
            let (seq_hits, seq_cost) = match (it.kind, it.root_filter) {
                (BatchKind::Knn(k), None) => idx.knn_with_cost(it.query, k),
                (BatchKind::Knn(k), Some(r)) => idx.knn_in_root_with_cost(r, it.query, k),
                (BatchKind::Range(r), None) => idx.range_with_cost(it.query, r),
                (BatchKind::Range(rad), Some(r)) => idx.range_in_root_with_cost(r, it.query, rad),
            };
            assert_hits_eq(&seq_hits, scratch.hits(i), &ctx);
            let cost = scratch.cost(i);
            assert!(seq_cost.same_work(&cost), "{ctx}: {seq_cost:?} vs {cost:?}");
            assert!(
                cost.batch_shared_accesses <= cost.node_accesses,
                "{ctx}: shared {} exceeds accesses {}",
                cost.batch_shared_accesses,
                cost.node_accesses
            );
            assert_eq!(
                seq_cost.batch_shared_accesses, 0,
                "{ctx}: sequential replay reported sharing"
            );
            shared_total += cost.batch_shared_accesses;
        }
        // A wide batch cycling an 8-query pool is dominated by duplicates:
        // the batched path must actually share work (unless the hatch
        // disabled it from the outside, e.g. the STRG_NO_BATCH=1 CI leg).
        if width >= 16 && batching_enabled() {
            assert!(
                shared_total > 0,
                "width={width}: duplicate-heavy batch shared no node accesses"
            );
        }
    }
}

/// The `STRG_NO_BATCH=1` hatch (per-query sequential fallback) produces
/// byte-identical hits and work fields, and reports zero shared accesses.
#[test]
fn no_batch_hatch_preserves_results() {
    let idx = build_index(dataset(150, 23), 9);
    let pool = queries(6, 321);
    let radius = idx.knn(&pool[0], 5).last().expect("warm hits").dist * 1.5;
    let items = mixed_items(&pool, 24, radius, &[]);

    let (batched, sequential) = in_both_batch_modes(|| {
        let mut scratch = BatchScratch::new();
        idx.query_batch_with_cost_into(&items, &mut scratch);
        (0..items.len())
            .map(|i| (scratch.hits(i).to_vec(), scratch.cost(i)))
            .collect::<Vec<_>>()
    });

    for (i, ((ha, ca), (hb, cb))) in batched.iter().zip(&sequential).enumerate() {
        assert_hits_eq(ha, hb, &format!("item={i}"));
        assert!(ca.same_work(cb), "item={i}: {ca:?} vs {cb:?}");
        assert_eq!(
            cb.batch_shared_accesses, 0,
            "item={i}: hatch mode reported sharing"
        );
    }
    assert!(
        batched.iter().any(|(_, c)| c.batch_shared_accesses > 0),
        "duplicate-heavy batch shared nothing"
    );
}

/// The batched sharded fan-out replays the per-query fan-out's decision
/// sequence exactly: same hits, same total cost, same per-shard
/// open/prune outcomes — at one thread and at eight.
#[test]
fn sharded_index_batch_matches_sequential_fanout() {
    let _guard = env_lock();
    let shards: Vec<_> = (0..3)
        .map(|s| build_index(dataset(80, 20 + s), 7 + s))
        .collect();
    let idxs: Vec<&StrgIndex<Point2, EgedMetric<Point2>>> = shards.iter().collect();
    let pool = queries(5, 777);
    let mut single = ShardScratch::new();
    let radius = {
        sharded_knn_into(&idxs, &pool[0], 5, Threads::Fixed(1), &mut single);
        single.hits().last().expect("warm hits").1.dist * 1.5
    };
    let items = mixed_items(&pool, 12, radius, &[]);

    for threads in [Threads::Fixed(1), Threads::Fixed(8)] {
        let mut batch = ShardBatchScratch::new();
        sharded_query_batch_into(&idxs, &items, threads, &mut batch);
        assert_eq!(batch.len(), items.len());

        for (i, it) in items.iter().enumerate() {
            let ctx = format!("threads={threads:?} item={i} {:?}", it.kind);
            let seq_cost = match it.kind {
                BatchKind::Knn(k) => {
                    sharded_knn_into(&idxs, it.query, k, Threads::Fixed(1), &mut single)
                }
                BatchKind::Range(r) => {
                    sharded_range_into(&idxs, it.query, r, Threads::Fixed(1), &mut single)
                }
            };
            assert_eq!(single.hits().len(), batch.hits(i).len(), "{ctx}: hit count");
            for (x, y) in single.hits().iter().zip(batch.hits(i)) {
                assert_eq!(x.0, y.0, "{ctx}: hit shard");
                assert_eq!(x.1.og_id, y.1.og_id, "{ctx}: hit id");
                assert_eq!(x.1.dist.to_bits(), y.1.dist.to_bits(), "{ctx}: distance");
            }
            let cost = batch.cost(i);
            assert!(seq_cost.same_work(&cost), "{ctx}: {seq_cost:?} vs {cost:?}");
            assert_eq!(
                single.outcomes().len(),
                batch.outcomes(i).len(),
                "{ctx}: outcome count"
            );
            for (s, (a, b)) in single.outcomes().iter().zip(batch.outcomes(i)).enumerate() {
                assert_eq!(a.opened, b.opened, "{ctx}: shard {s} open/prune");
                assert_eq!(
                    a.bound.to_bits(),
                    b.bound.to_bits(),
                    "{ctx}: shard {s} bound"
                );
                assert!(
                    a.cost.same_work(&b.cost),
                    "{ctx}: shard {s} charge {:?} vs {:?}",
                    a.cost,
                    b.cost
                );
            }
        }
    }
}

fn demo_clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("demo{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 2,
            frames: 36,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

/// The database-facade workload: global k-NN, a duplicate of it,
/// clip-scoped k-NN, a range query, and an unknown-clip miss — all in one
/// batch.
fn facade_batch(traj: &[Vec<Point2>]) -> Vec<Query<'_>> {
    QueryBatch::new()
        .query(Query::knn(5).trajectory(&traj[0]).with_cost())
        .query(Query::knn(5).trajectory(&traj[0]).with_cost())
        .query(
            Query::knn(3)
                .trajectory(&traj[1])
                .in_clip("demo3")
                .with_cost(),
        )
        .query(Query::range(150.0).trajectory(&traj[1]).with_cost())
        .query(
            Query::knn(2)
                .trajectory(&traj[0])
                .in_clip("nope")
                .with_cost(),
        )
        .queries()
        .to_vec()
}

fn assert_results_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.hits.len(), b.hits.len(), "{ctx}: hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.clip, y.clip, "{ctx}: hit clip");
        assert_eq!(x.og_id, y.og_id, "{ctx}: hit id");
        assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{ctx}: hit distance");
    }
    let (ca, cb) = (a.cost.expect("cost requested"), b.cost.expect("cost"));
    assert!(ca.same_work(&cb), "{ctx}: {ca:?} vs {cb:?}");
}

/// `Database::query_batch` on both facades equals the per-query `query`
/// loop — including clip scoping, misses and duplicates — and a sharded
/// database answers exactly like the single-tree one.
#[test]
fn database_batch_matches_per_query_loop() {
    let _guard = env_lock();
    let plain = VideoDatabase::new(DbOptions::new());
    let sharded = ShardedDatabase::new(DbOptions::new().shards(3));
    for seed in [3, 7, 11] {
        plain.ingest_clip(&demo_clip(seed), seed);
        sharded.ingest_clip(&demo_clip(seed), seed);
    }
    let traj = vec![
        plain.og(0).expect("og 0 stored").centroid_series(),
        (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect(),
    ];
    let batch = facade_batch(&traj);

    for (db, name) in [
        (&plain as &dyn Database, "plain"),
        (&sharded as &dyn Database, "sharded"),
    ] {
        let batched = db.query_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for (i, (r, q)) in batched.iter().zip(&batch).enumerate() {
            let single = db.query(q.clone());
            assert_results_eq(r, &single, &format!("{name} item={i}"));
        }
        assert!(batched[4].hits.is_empty(), "{name}: unknown clip must miss");
    }

    let a = plain.query_batch(&batch);
    let b = sharded.query_batch(&batch);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.hits.len(), y.hits.len(), "facades item={i}: hit count");
        for (hx, hy) in x.hits.iter().zip(&y.hits) {
            assert_eq!(hx.clip, hy.clip, "facades item={i}");
            assert_eq!(hx.og_id, hy.og_id, "facades item={i}");
            assert_eq!(hx.dist.to_bits(), hy.dist.to_bits(), "facades item={i}");
        }
    }
}

/// A `query_batch` response body over a real socket is, element for
/// element, byte-identical to the individual `query` responses for the
/// same specs (`elapsed_ns` and `batch_shared_accesses` normalized — the
/// two documented exceptions); malformed batches are rejected whole.
#[test]
fn query_batch_verb_matches_individual_queries() {
    let (handle, join) = boot(two_clip_db(), ServeConfig::default());
    let mut c = Client::connect(handle.addr());

    let specs = [
        r#"{"from":"0,80","to":"160,80","k":3}"#,
        r#"{"from":"0,80","to":"160,80","k":3}"#,
        r#"{"from":"10,40","to":"120,90","radius":1e9}"#,
        r#"{"from":"0,80","to":"160,80","k":2,"clip":"cam1"}"#,
    ];
    let singles: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let r = c.send(&format!(r#"{{"id":{i},"method":"query","params":{s}}}"#));
            normalize(result_slice(&r).expect("query result"))
        })
        .collect();

    let batch_req = format!(
        r#"{{"id":9,"method":"query_batch","params":{{"queries":[{}]}}}}"#,
        specs.join(",")
    );
    let r = c.send(&batch_req);
    let body = normalize(result_slice(&r).expect("query_batch result"));
    assert_eq!(
        body,
        format!("[{}]", singles.join(",")),
        "batch body diverged from individual responses"
    );

    // Structural rejections: an empty batch and a non-object element.
    let r = c.send(r#"{"id":10,"method":"query_batch","params":{"queries":[]}}"#);
    assert!(r.contains(r#""code":"invalid""#), "{r}");
    let r = c.send(r#"{"id":11,"method":"query_batch","params":{"queries":[1]}}"#);
    assert!(r.contains(r#""code":"invalid""#), "{r}");

    // The method counter (incremented at accept time, so the two
    // rejections above count too) and the width histogram (successful
    // batches only) both saw the traffic.
    let r = c.send(r#"{"id":12,"method":"metrics"}"#);
    let metrics = json_parse::parse(result_slice(&r).expect("metrics")).expect("parse");
    let counters = obj_get(&metrics, "counters");
    assert_eq!(as_u64(obj_get(counters, "serve.method.query_batch")), 3);
    let width = obj_get(obj_get(&metrics, "histograms"), "serve.batch.width");
    assert_eq!(as_u64(obj_get(width, "count")), 1, "one batch recorded");
    assert_eq!(as_u64(obj_get(width, "max")), specs.len() as u64);

    c.send(r#"{"id":13,"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

/// With a coalescing window configured, a burst of concurrent single
/// `query` requests is answered from one batched execution: every
/// response is byte-identical to the un-coalesced reference, and the
/// width histogram shows a real batch (width > 1).
#[test]
fn coalescing_window_batches_concurrent_queries() {
    let reference = {
        let (handle, join) = boot(two_clip_db(), ServeConfig::default());
        let r = call(
            handle.addr(),
            r#"{"id":1,"method":"query","params":{"from":"0,80","to":"160,80","k":3}}"#,
        );
        call(handle.addr(), r#"{"id":0,"method":"shutdown"}"#);
        join.join().unwrap().unwrap();
        normalize(result_slice(&r).expect("reference query"))
    };

    let cfg = ServeConfig {
        coalesce_window: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let (handle, join) = boot(two_clip_db(), cfg);
    const BURST: usize = 4;
    let workers: Vec<_> = (0..BURST)
        .map(|i| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                call(
                    addr,
                    &format!(
                        r#"{{"id":{i},"method":"query","params":{{"from":"0,80","to":"160,80","k":3}}}}"#
                    ),
                )
            })
        })
        .collect();
    for (i, w) in workers.into_iter().enumerate() {
        let r = w.join().expect("burst worker");
        assert!(r.contains(&format!(r#""id":{i},"#)), "{r}");
        assert_eq!(
            normalize(result_slice(&r).expect("burst query")),
            reference,
            "coalesced response diverged from the un-coalesced reference"
        );
    }

    let r = call(handle.addr(), r#"{"id":9,"method":"metrics"}"#);
    let metrics = json_parse::parse(result_slice(&r).expect("metrics")).expect("parse");
    let counters = obj_get(&metrics, "counters");
    assert_eq!(
        as_u64(obj_get(counters, "serve.coalesced")),
        BURST as u64,
        "every burst query must drain through a coalescing flush"
    );
    let width = obj_get(obj_get(&metrics, "histograms"), "serve.batch.width");
    assert!(
        as_u64(obj_get(width, "max")) > 1,
        "a 300ms window over a concurrent burst must batch: {}",
        width.render()
    );

    call(handle.addr(), r#"{"id":10,"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

/// Strips both documented per-response nondeterminisms from a query body.
fn normalize(body: &str) -> String {
    wire::zero_batch_shared(&wire::zero_elapsed_ns(body))
}
