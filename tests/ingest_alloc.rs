//! Allocation-discipline harness for the ingest hot path.
//!
//! Installs a counting `#[global_allocator]` shim (no new dependencies —
//! it forwards to [`System`]) and asserts that steady-state segmentation
//! through a warm [`SegScratch`] arena performs **zero** heap allocations:
//! every buffer the pipeline touches is owned by the arena and only
//! recycled after warm-up (DESIGN.md §10).
//!
//! This file is its own test binary, so the global allocator swap cannot
//! perturb any other suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use strg::prelude::*;

/// Forwards to the system allocator, counting every allocation path that
/// can acquire or move heap memory (alloc, alloc_zeroed, realloc).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::SeqCst)
}

/// A deterministic busy frame (blocks + xorshift speckles) at the paper's
/// scene scale, matching the equivalence suite's workload shape.
fn busy_frame(w: usize, h: usize, seed: u64) -> Frame {
    let mut f = Frame::new(w, h, Pixel::new(28, 36, 52));
    f.fill_rect(
        (w / 6) as isize,
        (h / 6) as isize,
        w / 3,
        h / 2,
        Pixel::new(214, 64, 58),
    );
    f.fill_rect(
        (w / 2) as isize,
        (h / 3) as isize,
        w / 4,
        h / 3,
        Pixel::new(62, 198, 88),
    );
    let mut state = seed | 1;
    for _ in 0..(w * h / 10) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let x = (state % w as u64) as isize;
        let y = ((state >> 16) % h as u64) as isize;
        let v = (state >> 32) as u8;
        f.set(x, y, Pixel::new(v, v.wrapping_mul(5), v.wrapping_add(60)));
    }
    f
}

/// Steady-state segmentation must not touch the allocator: after a warm-up
/// pass over the frame set, re-segmenting the same frames through the same
/// arena performs zero alloc/realloc events.
#[test]
fn steady_state_segmentation_allocates_nothing() {
    // The fast path must be active (the naïve reference kernels allocate
    // by design).
    std::env::remove_var(NAIVE_SEGMENT_ENV);
    assert!(!naive_segmentation_enabled());

    let cfg = SegmentConfig::default();
    let frames: Vec<Frame> = (0..3).map(|i| busy_frame(160, 120, 11 + i)).collect();
    let mut scratch = SegScratch::new();

    // Warm-up: two passes so every content-dependent buffer (region
    // stats, adjacency, neighbor CSR) reaches its high-water capacity.
    for _ in 0..2 {
        for f in &frames {
            segment_into(f, &cfg, &mut scratch);
        }
    }
    let grows_warm = scratch.grow_events();
    let bytes_warm = scratch.alloc_bytes();
    assert!(bytes_warm > 0, "warm arena owns real buffers");

    // Measure: three steady-state passes under the counting allocator.
    let mut last_regions = 0;
    let before = alloc_events();
    for _ in 0..3 {
        for f in &frames {
            let seg = segment_into(f, &cfg, &mut scratch);
            last_regions = seg.regions.len();
        }
    }
    let delta = alloc_events() - before;

    assert!(last_regions > 0, "segmentation produced real regions");
    assert_eq!(
        delta, 0,
        "steady-state segmentation performed {delta} heap allocations"
    );
    // The arena's own bookkeeping agrees with the allocator.
    assert_eq!(scratch.grow_events(), grows_warm);
    assert_eq!(scratch.alloc_bytes(), bytes_warm);
}

/// The arena's grow-event counter is an upper bound witness: a cold arena
/// grows, a warm one does not, and `alloc_bytes` is monotone under reuse.
#[test]
fn cold_arena_grows_then_stops() {
    std::env::remove_var(NAIVE_SEGMENT_ENV);
    let cfg = SegmentConfig::default();
    let f = busy_frame(96, 72, 3);
    let mut scratch = SegScratch::new();
    assert_eq!(scratch.grow_events(), 0);
    assert_eq!(scratch.alloc_bytes(), 0);
    segment_into(&f, &cfg, &mut scratch);
    let cold_grows = scratch.grow_events();
    assert!(cold_grows > 0, "first call must grow the arena");
    segment_into(&f, &cfg, &mut scratch);
    assert_eq!(
        scratch.grow_events(),
        cold_grows,
        "second call on the same frame must not grow"
    );
}
