//! Property-based tests of the paper's core claims, over the public facade:
//! Theorem 2 on realistic OG data, index structural invariants under random
//! workloads, and the clustering/accuracy relationships the evaluation
//! relies on.

use proptest::prelude::*;
use strg::core::StrgIndex;
use strg::graph::BackgroundGraph;
use strg::prelude::*;

fn trajectory() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0.0f64..320.0, 0.0f64..240.0).prop_map(|(x, y)| Point2::new(x, y)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2 on trajectory-shaped data: metric EGED obeys the triangle
    /// inequality, which is what makes leaf keys prunable.
    #[test]
    fn theorem2_on_trajectories(a in trajectory(), b in trajectory(), c in trajectory()) {
        let m = EgedMetric::<Point2>::new();
        let ab = m.distance(&a, &b);
        let bc = m.distance(&b, &c);
        let ac = m.distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
        prop_assert!((ab - m.distance(&b, &a)).abs() < 1e-9);
    }

    /// Index invariants hold under arbitrary insert workloads: leaf keys
    /// stay sorted and equal to the metric distance to their cluster
    /// centroid, and no OG is lost or duplicated.
    #[test]
    fn index_invariants_under_inserts(seqs in prop::collection::vec(trajectory(), 1..40)) {
        let mut cfg = StrgIndexConfig::with_k(3);
        cfg.leaf_split_threshold = 8;
        let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), cfg);
        let root = idx.add_segment(BackgroundGraph::default(), Vec::new());
        for (i, s) in seqs.iter().enumerate() {
            idx.insert(root, i as u64, s.clone());
        }
        prop_assert_eq!(idx.len(), seqs.len());

        let m = EgedMetric::<Point2>::new();
        let mut seen = Vec::new();
        for r in idx.roots() {
            for c in &r.clusters {
                let mut prev = f64::NEG_INFINITY;
                for rec in &c.leaf.records {
                    prop_assert!(rec.key >= prev, "keys sorted");
                    prev = rec.key;
                    let d = m.distance(&rec.seq, &c.centroid);
                    prop_assert!((d - rec.key).abs() < 1e-9, "key = EGED_M to centroid");
                    seen.push(rec.og_id);
                }
            }
        }
        seen.sort_unstable();
        let expect: Vec<u64> = (0..seqs.len() as u64).collect();
        prop_assert_eq!(seen, expect, "no OG lost or duplicated");
    }

    /// Exact index k-NN equals brute force for arbitrary data and queries.
    #[test]
    fn index_knn_is_exact(
        seqs in prop::collection::vec(trajectory(), 2..30),
        q in trajectory(),
        k in 1usize..6,
    ) {
        let items: Vec<(u64, Vec<Point2>)> =
            seqs.iter().cloned().enumerate().map(|(i, s)| (i as u64, s)).collect();
        let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), StrgIndexConfig::with_k(4));
        idx.add_segment(BackgroundGraph::default(), items.clone());

        let m = EgedMetric::<Point2>::new();
        let mut truth: Vec<f64> = items.iter().map(|(_, s)| m.distance(&q, s)).collect();
        truth.sort_by(f64::total_cmp);
        let got = idx.knn(&q, k);
        prop_assert_eq!(got.len(), k.min(items.len()));
        for (h, td) in got.iter().zip(&truth) {
            prop_assert!((h.dist - td).abs() < 1e-9, "{} vs {}", h.dist, td);
        }
    }

    /// M-tree invariants survive arbitrary workloads (covering radii).
    #[test]
    fn mtree_invariants(seqs in prop::collection::vec(trajectory(), 2..60)) {
        let items: Vec<(u64, Vec<Point2>)> =
            seqs.into_iter().enumerate().map(|(i, s)| (i as u64, s)).collect();
        let n = items.len();
        let t = MTree::bulk_insert(
            EgedMetric::<Point2>::new(),
            MTreeConfig { node_capacity: 4, ..MTreeConfig::sampling(1) },
            items,
        );
        prop_assert_eq!(t.len(), n);
        t.check_invariants();
    }
}

/// The headline robustness claim of Figure 5, at smoke scale: EM-EGED's
/// error under heavy noise stays within a sane band while EM clustering
/// still runs to completion for LCS and DTW.
#[test]
fn clustering_error_rates_bounded() {
    use strg::cluster::Clusterer;
    let patterns: Vec<_> = strg::synth::all_patterns()
        .into_iter()
        .step_by(12)
        .collect();
    let k = patterns.len();
    let ds = strg::synth::generate_for_patterns(&patterns, 6, &SynthConfig::with_noise(0.2), 9);
    let data = ds.series();
    let labels: Vec<u32> = ds
        .items
        .iter()
        .map(|t| patterns.iter().position(|p| p.id == t.label).unwrap() as u32)
        .collect();
    let em = EmClusterer::new(Eged, EmConfig::new(k).with_seed(1));
    let c = em.fit(&data);
    let err = clustering_error_rate(&c.assignments, &labels, c.k());
    assert!(
        err < 35.0,
        "EM-EGED on 4 well-separated patterns at 20% noise: {err}%"
    );
}
