//! Allocation-discipline harness for the query hot path.
//!
//! Installs the same counting `#[global_allocator]` shim as
//! `ingest_alloc.rs` and asserts that steady-state sequential k-NN and
//! range queries through warm arenas perform **zero** heap allocations —
//! on a single STRG-Index tree ([`QueryScratch`]), across a sharded
//! fan-out ([`ShardScratch`]), and on the M-tree baseline
//! ([`MtreeScratch`]). Every DP row, candidate list, pending heap and hit
//! buffer is owned by an arena and only recycled after warm-up
//! (DESIGN.md §13).
//!
//! The proof holds in the hatch-free production configuration: the env
//! hatches (`STRG_SCALAR`, `STRG_NO_LB`, `STRG_NO_SHARD_LB`,
//! `STRG_NO_BATCH`) are re-read
//! per query, and `std::env::var` only allocates its `String` result when
//! the variable is **set** — absent variables are alloc-free. The tests
//! therefore clear the hatches up front; `scripts/ci.sh` runs this binary
//! in default (SIMD + bounds) mode only, while the hatched modes are
//! covered by the equivalence suites.
//!
//! This file is its own test binary, so the global allocator swap cannot
//! perturb any other suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use strg::core::{
    sharded_knn_into, sharded_query_batch_into, sharded_range_into, BatchItem, BatchKind,
    BatchScratch, QueryScratch, ShardBatchScratch, ShardScratch,
};
use strg::distance::SCALAR_ENV;
use strg::mtree::MtreeScratch;
use strg::prelude::*;

/// Forwards to the system allocator, counting every allocation path that
/// can acquire or move heap memory (alloc, alloc_zeroed, realloc).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::SeqCst)
}

/// Clears every env hatch the query path re-reads per call: a set
/// variable makes `std::env::var` allocate the returned `String`, which
/// would charge the hatch — not the query path — with an allocation.
fn clear_hatches() {
    std::env::remove_var(SCALAR_ENV);
    std::env::remove_var(NO_LB_ENV);
    std::env::remove_var(NO_SHARD_LB_ENV);
    std::env::remove_var(NO_BATCH_ENV);
}

/// Synthetic trajectory workload at a scale where clusters, leaves and
/// the lower-bound filter all participate.
fn dataset(n: usize, seed: u64) -> Vec<(u64, Vec<Point2>)> {
    generate_total(n, &SynthConfig::with_noise(0.10), seed)
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Vec<Point2>> {
    generate_total(n, &SynthConfig::with_noise(0.10), seed)
        .items
        .into_iter()
        .map(|q| q.points)
        .collect()
}

fn build_index(items: Vec<(u64, Vec<Point2>)>, seed: u64) -> StrgIndex<Point2, EgedMetric<Point2>> {
    let mut cfg = StrgIndexConfig::with_k(16.min(items.len().max(1)));
    cfg.seed = seed;
    cfg.em_max_iters = 8;
    cfg.em_n_init = 1;
    cfg.threads = Threads::Fixed(1);
    let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), cfg);
    idx.add_segment(BackgroundGraph::default(), items);
    idx
}

/// Steady-state single-tree k-NN and range queries must not touch the
/// allocator once the arena has seen the workload.
#[test]
fn steady_state_tree_queries_allocate_nothing() {
    clear_hatches();
    let idx = build_index(dataset(240, 11), 5);
    let qs = queries(6, 999);
    let mut scratch = QueryScratch::new();

    // A radius that matches real records, captured before measurement.
    let (warm_hits, _) = idx.knn_with_cost_into(&qs[0], 5, &mut scratch);
    assert!(!warm_hits.is_empty(), "workload produced hits");
    let radius = warm_hits.last().unwrap().dist * 1.5;

    // The arena path must agree with the allocating wrappers.
    for q in &qs {
        let (hits, cost) = idx.knn_with_cost(q, 5);
        let (hits_into, cost_into) = idx.knn_with_cost_into(q, 5, &mut scratch);
        assert_eq!(hits.as_slice(), hits_into, "into-path hits diverged");
        assert!(cost.same_work(&cost_into), "into-path cost diverged");
    }

    // Warm-up: two passes so every content-dependent buffer reaches its
    // high-water capacity.
    for _ in 0..2 {
        for q in &qs {
            idx.knn_with_cost_into(q, 5, &mut scratch);
            idx.range_with_cost_into(q, radius, &mut scratch);
        }
    }
    let grows_warm = scratch.grow_events();

    let mut last_hits = 0;
    let before = alloc_events();
    for _ in 0..3 {
        for q in &qs {
            let (h, _) = idx.knn_with_cost_into(q, 5, &mut scratch);
            last_hits = h.len();
            idx.range_with_cost_into(q, radius, &mut scratch);
        }
    }
    let delta = alloc_events() - before;

    assert!(last_hits > 0, "steady-state queries produced real hits");
    assert_eq!(
        delta, 0,
        "steady-state tree queries performed {delta} heap allocations"
    );
    assert_eq!(scratch.grow_events(), grows_warm, "arena kept growing");
}

/// Steady-state sharded fan-outs (bound-ordered, sequential) must not
/// touch the allocator: the shard arena threads one tree arena through
/// every opened shard.
#[test]
fn steady_state_sharded_queries_allocate_nothing() {
    clear_hatches();
    let shards: Vec<_> = (0..3)
        .map(|s| build_index(dataset(90, 20 + s), 7 + s))
        .collect();
    let idxs: Vec<&StrgIndex<Point2, EgedMetric<Point2>>> = shards.iter().collect();
    let qs = queries(5, 777);
    let mut scratch = ShardScratch::new();

    sharded_knn_into(&idxs, &qs[0], 5, Threads::Fixed(1), &mut scratch);
    assert!(!scratch.hits().is_empty(), "fan-out produced hits");
    let radius = scratch.hits().last().unwrap().1.dist * 1.5;

    for _ in 0..2 {
        for q in &qs {
            sharded_knn_into(&idxs, q, 5, Threads::Fixed(1), &mut scratch);
            sharded_range_into(&idxs, q, radius, Threads::Fixed(1), &mut scratch);
        }
    }
    let grows_warm = scratch.grow_events();

    let mut last_hits = 0;
    let before = alloc_events();
    for _ in 0..3 {
        for q in &qs {
            sharded_knn_into(&idxs, q, 5, Threads::Fixed(1), &mut scratch);
            last_hits = scratch.hits().len();
            sharded_range_into(&idxs, q, radius, Threads::Fixed(1), &mut scratch);
        }
    }
    let delta = alloc_events() - before;

    assert!(last_hits > 0, "steady-state fan-outs produced real hits");
    assert_eq!(
        delta, 0,
        "steady-state sharded queries performed {delta} heap allocations"
    );
    assert_eq!(
        scratch.grow_events(),
        grows_warm,
        "shard arena kept growing"
    );
}

/// Steady-state *batched* execution holds the same discipline: one
/// shared descent over a warm [`BatchScratch`] answers a mixed
/// k-NN/range batch (duplicates included) without touching the
/// allocator, on a single tree and through the sequential sharded
/// fan-out's [`ShardBatchScratch`].
#[test]
fn steady_state_batched_queries_allocate_nothing() {
    clear_hatches();
    let idx = build_index(dataset(240, 11), 5);
    let qs = queries(6, 999);
    let mut scratch = BatchScratch::new();

    let mut warm_scratch = QueryScratch::new();
    let (warm_hits, _) = idx.knn_with_cost_into(&qs[0], 5, &mut warm_scratch);
    assert!(!warm_hits.is_empty(), "workload produced hits");
    let radius = warm_hits.last().unwrap().dist * 1.5;

    // A mixed batch wider than the query pool, so duplicates share work.
    let items: Vec<BatchItem<'_, Point2>> = (0..16)
        .map(|i| BatchItem {
            kind: if i % 3 == 1 {
                BatchKind::Range(radius)
            } else {
                BatchKind::Knn(1 + i % 5)
            },
            query: &qs[i % qs.len()],
            root_filter: None,
        })
        .collect();

    for _ in 0..2 {
        idx.query_batch_with_cost_into(&items, &mut scratch);
    }
    let grows_warm = scratch.grow_events();
    assert!(!scratch.hits(0).is_empty(), "batched queries produced hits");
    assert!(
        (0..items.len()).any(|i| scratch.cost(i).batch_shared_accesses > 0),
        "duplicate-heavy batch shared no node accesses"
    );

    let before = alloc_events();
    for _ in 0..3 {
        idx.query_batch_with_cost_into(&items, &mut scratch);
    }
    let delta = alloc_events() - before;
    assert_eq!(
        delta, 0,
        "steady-state batched queries performed {delta} heap allocations"
    );
    assert_eq!(
        scratch.grow_events(),
        grows_warm,
        "batch arena kept growing"
    );

    // The sequential sharded fan-out reuses the same discipline: the
    // shard arena prefetches one batched descent per shard and replays
    // the merge allocation-free.
    let shards: Vec<_> = (0..3)
        .map(|s| build_index(dataset(90, 20 + s), 7 + s))
        .collect();
    let idxs: Vec<&StrgIndex<Point2, EgedMetric<Point2>>> = shards.iter().collect();
    let mut shard_scratch = ShardBatchScratch::new();
    for _ in 0..2 {
        sharded_query_batch_into(&idxs, &items, Threads::Fixed(1), &mut shard_scratch);
    }
    let grows_warm = shard_scratch.grow_events();
    assert!(!shard_scratch.hits(0).is_empty(), "fan-out produced hits");

    let before = alloc_events();
    for _ in 0..3 {
        sharded_query_batch_into(&idxs, &items, Threads::Fixed(1), &mut shard_scratch);
    }
    let delta = alloc_events() - before;
    assert_eq!(
        delta, 0,
        "steady-state batched fan-outs performed {delta} heap allocations"
    );
    assert_eq!(
        shard_scratch.grow_events(),
        grows_warm,
        "shard batch arena kept growing"
    );
}

/// The M-tree baseline holds the same discipline: pending heap, best-k
/// heap storage and neighbor lists all live in the arena.
#[test]
fn steady_state_mtree_queries_allocate_nothing() {
    clear_hatches();
    let tree = MTree::bulk_insert(
        EgedMetric::<Point2>::new(),
        MTreeConfig::random(3),
        dataset(200, 31),
    );
    let qs = queries(5, 555);
    let mut scratch = MtreeScratch::new();

    let (warm, _) = tree.knn_with_cost_into(&qs[0], 5, &mut scratch);
    assert!(!warm.is_empty(), "M-tree workload produced hits");
    let radius = warm.last().unwrap().dist * 1.5;

    for _ in 0..2 {
        for q in &qs {
            tree.knn_with_cost_into(q, 5, &mut scratch);
            tree.range_with_cost_into(q, radius, &mut scratch);
        }
    }
    let grows_warm = scratch.grow_events();

    let mut last_hits = 0;
    let before = alloc_events();
    for _ in 0..3 {
        for q in &qs {
            let (h, _) = tree.knn_with_cost_into(q, 5, &mut scratch);
            last_hits = h.len();
            tree.range_with_cost_into(q, radius, &mut scratch);
        }
    }
    let delta = alloc_events() - before;

    assert!(last_hits > 0, "steady-state M-tree queries produced hits");
    assert_eq!(
        delta, 0,
        "steady-state M-tree queries performed {delta} heap allocations"
    );
    assert_eq!(
        scratch.grow_events(),
        grows_warm,
        "M-tree arena kept growing"
    );
}
