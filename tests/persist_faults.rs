//! Persistence fault-injection suite: a corrupt STRGDB file must always
//! yield a structured `io::Error` — never a panic, an abort (oversized
//! allocation), or a partially-populated database.
//!
//! The v2 loader's defenses under test: leading/trailing magic and version
//! checks, per-record CRC-32, length-bounds checks before any slice or
//! allocation, count-vs-remaining-bytes caps, arity cross-checks between
//! META / CLIP / ROOT / CLUS / LEAF / SUMS / OGS records, and the TOC
//! structural cross-check.

use std::io::ErrorKind;
use std::path::PathBuf;

use strg::prelude::*;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("strg_persist_faults_{name}_{}", std::process::id()))
}

/// A small but structurally complete database: multiple clips, clusters,
/// leaf records, OGs, edges.
fn sample_bytes() -> Vec<u8> {
    let db = VideoDatabase::new(DbOptions::new());
    for seed in [2u64, 6] {
        let clip = VideoClip {
            name: format!("clip-{seed}"),
            scene: lab_scene(&ScenarioConfig {
                n_actors: 2,
                frames: 36,
                seed,
                ..Default::default()
            }),
            fps: 30.0,
        };
        db.ingest_clip(&clip, seed);
    }
    let path = temp_path("sample");
    db.save(&path).expect("save");
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Loads `bytes` as a database file; returns the error, failing the test
/// if the load unexpectedly succeeds.
fn must_reject(bytes: &[u8], ctx: &str) -> std::io::Error {
    let path = temp_path("case");
    std::fs::write(&path, bytes).unwrap();
    let result = VideoDatabase::load(&path, DbOptions::new());
    let _ = std::fs::remove_file(&path);
    match result {
        Ok(db) => panic!(
            "{ctx}: corrupt file loaded as a database ({} clips, {} objects)",
            db.stats().clips,
            db.stats().objects
        ),
        Err(e) => e,
    }
}

/// Structured means `InvalidData` from the format validators (not a panic,
/// not an allocation abort, not a propagated parse artifact).
fn assert_structured(e: &std::io::Error, ctx: &str) {
    assert_eq!(e.kind(), ErrorKind::InvalidData, "{ctx}: {e}");
}

#[test]
fn truncations_are_rejected_everywhere() {
    let bytes = sample_bytes();
    assert!(bytes.len() > 600, "sample too small to exercise truncation");
    // Every prefix length in a spread across the file, plus the exact
    // boundaries that historically go wrong.
    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(211).collect();
    cuts.extend([
        0,
        1,
        7,
        8,
        15,
        16, // inside / just past the header
        bytes.len() - 1,
        bytes.len() - 8,
        bytes.len() - 16, // trailer shaved
        bytes.len() - 17,
    ]);
    for cut in cuts {
        let e = must_reject(&bytes[..cut], &format!("truncate at {cut}"));
        assert_structured(&e, &format!("truncate at {cut}"));
    }
}

#[test]
fn flipped_bytes_are_rejected_everywhere() {
    let bytes = sample_bytes();
    // Flip one byte at a time across the whole file — header, record
    // headers, payloads, CRCs, TOC, trailer. Every single-byte corruption
    // must be caught (payloads by CRC-32, structure by the validators).
    for pos in (0..bytes.len()).step_by(37) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xFF;
        let e = must_reject(&corrupt, &format!("flip at {pos}"));
        assert_structured(&e, &format!("flip at {pos}"));
    }
}

#[test]
fn garbage_and_bad_headers_are_rejected() {
    for (name, bytes) in [
        ("empty", Vec::new()),
        ("short", b"STRG".to_vec()),
        ("text garbage", b"not a database at all\n".to_vec()),
        ("v1 header only", b"STRGDB v1\n".to_vec()),
        ("v1 bad counts", b"STRGDB v1\nclips notanumber\n".to_vec()),
        (
            "binary garbage",
            (0..4096u32).flat_map(|i| i.to_le_bytes()).collect(),
        ),
    ] {
        let e = must_reject(&bytes, name);
        assert_structured(&e, name);
    }
    // Non-UTF-8 that is also not v2 magic.
    let e = must_reject(&[0xFF, 0xFE, 0x00, 0x01, 0x80], "non-utf8");
    assert_structured(&e, "non-utf8");
}

#[test]
fn unsupported_version_is_rejected() {
    let mut bytes = sample_bytes();
    // Version field lives at offset 8..12.
    bytes[8..12].copy_from_slice(&3u32.to_le_bytes());
    let e = must_reject(&bytes, "version 3");
    assert_structured(&e, "version 3");
    assert!(
        e.to_string().contains("version"),
        "error should name the version: {e}"
    );
}

/// Offsets of each record header (tag, len, crc) walked from the file
/// layout itself.
fn record_offsets(bytes: &[u8]) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    let mut pos = 16usize;
    let body_end = bytes.len() - 16;
    while pos < body_end {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        out.push((pos, len));
        pos += 16 + len as usize;
    }
    out
}

#[test]
fn zero_length_and_oversized_length_fields_are_rejected() {
    let bytes = sample_bytes();
    for (i, (off, len)) in record_offsets(&bytes).iter().enumerate() {
        // Oversized: a length claiming more bytes than the file holds must
        // be caught by the bounds check before any slicing or allocation.
        let mut oversized = bytes.clone();
        oversized[off + 4..off + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        let e = must_reject(&oversized, &format!("record {i} len=u64::MAX"));
        assert_structured(&e, &format!("record {i} len=u64::MAX"));

        // Zero: collapsing a non-empty record desynchronizes the walk; the
        // CRC, tag, or TOC cross-check must refuse the file.
        if *len > 0 {
            let mut zeroed = bytes.clone();
            zeroed[off + 4..off + 12].copy_from_slice(&0u64.to_le_bytes());
            let e = must_reject(&zeroed, &format!("record {i} len=0"));
            assert_structured(&e, &format!("record {i} len=0"));
        }
    }
}

#[test]
fn oversized_internal_counts_are_rejected_without_allocating() {
    let bytes = sample_bytes();
    // The META payload starts right after the first record header at 16:
    // clips, ogs, roots, strg_bytes, index_len — all u64. Claim 2^60 clips
    // and fix up the CRC so the count check itself (not the checksum) has
    // to reject it. `Vec::with_capacity(2^60)` would abort the process, so
    // surviving this case proves counts are capped before allocation.
    let meta_payload = 32usize;
    let mut evil = bytes.clone();
    evil[meta_payload..meta_payload + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    let len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
    let crc = crc32_of(&evil[meta_payload..meta_payload + len]);
    evil[28..32].copy_from_slice(&crc.to_le_bytes());
    let e = must_reject(&evil, "META clips=2^60");
    assert_structured(&e, "META clips=2^60");
}

/// Local CRC-32 (IEEE) mirror so the test can re-seal a record after
/// tampering with its payload.
fn crc32_of(data: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, t) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *t = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[test]
fn sharded_manifest_faults_are_rejected() {
    // A missing shard file referenced by an otherwise valid manifest.
    let dir = temp_path("shard_missing");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("MANIFEST"),
        "STRG-SHARDS v2\nshards 2\nnext_og 0\n",
    )
    .unwrap();
    let r = ShardedDatabase::load(&dir, DbOptions::new());
    assert!(r.is_err(), "missing shard files accepted");

    // Garbage manifest.
    std::fs::write(dir.join("MANIFEST"), "STRG-SHARDS v9\nshards 1\n").unwrap();
    let Err(e) = ShardedDatabase::load(&dir, DbOptions::new()) else {
        panic!("garbage manifest accepted");
    };
    assert_eq!(e.kind(), ErrorKind::InvalidData, "{e}");

    // Zero shards.
    std::fs::write(dir.join("MANIFEST"), "STRG-SHARDS v2\nshards 0\n").unwrap();
    let Err(e) = ShardedDatabase::load(&dir, DbOptions::new()) else {
        panic!("zero-shard manifest accepted");
    };
    assert_eq!(e.kind(), ErrorKind::InvalidData, "{e}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_shard_file_fails_the_whole_load() {
    let db = ShardedDatabase::new(DbOptions::new().shards(2));
    let clip = VideoClip {
        name: "only".into(),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 1,
            frames: 30,
            seed: 4,
            ..Default::default()
        }),
        fps: 30.0,
    };
    db.ingest_clip(&clip, 4);
    let dir = temp_path("shard_corrupt");
    db.save(&dir).unwrap();
    // Flip a byte in the middle of shard 0's file.
    let shard0 = dir.join("shard-000.strgdb");
    let mut bytes = std::fs::read(&shard0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&shard0, &bytes).unwrap();
    let r = ShardedDatabase::load(&dir, DbOptions::new());
    let _ = std::fs::remove_dir_all(&dir);
    let Err(e) = r else {
        panic!("corrupt shard accepted");
    };
    assert_eq!(e.kind(), ErrorKind::InvalidData, "{e}");
}
