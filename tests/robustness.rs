//! Failure injection: the pipeline must keep producing usable indexes under
//! degraded input — heavy pixel noise, strong illumination flicker and
//! dropped frames — the nuisances the paper's EDISON choice and tracking
//! design are motivated by.

use strg::prelude::*;
use strg::video::SceneNoise;

fn clip_with_noise(noise: SceneNoise, seed: u64) -> VideoClip {
    VideoClip {
        name: format!("noisy{seed}"),
        scene: {
            let mut s = lab_scene(&ScenarioConfig {
                n_actors: 2,
                frames: 70,
                seed,
                ..Default::default()
            });
            s.noise = noise;
            s
        },
        fps: 30.0,
    }
}

#[test]
fn survives_heavy_pixel_noise() {
    let db = VideoDatabase::new(DbOptions::new());
    let report = db.ingest_clip(
        &clip_with_noise(
            SceneNoise {
                illumination: 6.0,
                pixel_noise: 0.01, // 10x the default salt noise
                frame_drop: 0.0,
            },
            5,
        ),
        1,
    );
    assert!(report.objects >= 1, "walkers still tracked under noise");
    let og = db.og(0).unwrap();
    assert!(og.duration() >= 5, "tracks are not shredded to confetti");
}

#[test]
fn survives_dropped_frames() {
    let db = VideoDatabase::new(DbOptions::new());
    let report = db.ingest_clip(
        &clip_with_noise(
            SceneNoise {
                illumination: 2.0,
                pixel_noise: 0.0005,
                frame_drop: 0.08, // ~8% of frames lose all actors
            },
            6,
        ),
        1,
    );
    // Tracks break at dropped frames but fragments must still be objects.
    assert!(report.objects >= 1, "objects survive frame drops");
    let stats = db.stats();
    assert!(stats.index_bytes < stats.strg_bytes);
    // Queries still work.
    let og = db.og(0).unwrap();
    let q = og.centroid_series();
    let hits = db.query(Query::knn(1).trajectory(&q)).hits;
    assert_eq!(hits[0].og_id, 0);
}

#[test]
fn clean_vs_noisy_extraction_is_comparable() {
    // The number of extracted objects should not explode under noise
    // (over-segmentation would poison the index).
    let quiet = VideoDatabase::new(DbOptions::new());
    let rq = quiet.ingest_clip(
        &clip_with_noise(
            SceneNoise {
                illumination: 0.0,
                pixel_noise: 0.0,
                frame_drop: 0.0,
            },
            9,
        ),
        1,
    );
    let noisy = VideoDatabase::new(DbOptions::new());
    let rn = noisy.ingest_clip(
        &clip_with_noise(
            SceneNoise {
                illumination: 5.0,
                pixel_noise: 0.005,
                frame_drop: 0.0,
            },
            9,
        ),
        1,
    );
    assert!(
        rn.objects <= rq.objects.max(2) * 3,
        "quiet {} noisy {}",
        rq.objects,
        rn.objects
    );
}

#[test]
fn empty_and_static_videos_are_harmless() {
    let db = VideoDatabase::new(DbOptions::new());
    // A static scene: no actors at all.
    let clip = VideoClip {
        name: "static".into(),
        scene: {
            let mut s = lab_scene(&ScenarioConfig {
                n_actors: 0,
                frames: 0,
                seed: 1,
                ..Default::default()
            });
            s.actors.clear();
            s
        },
        fps: 30.0,
    };
    // Zero frames (frame_count is 0 with no actors): ingest an explicit
    // short render instead.
    let frames: Vec<Frame> = (0..10)
        .map(|t| {
            let mut rng = rand::SeedableRng::seed_from_u64(t as u64);
            clip.scene.render(t, &mut rng)
        })
        .collect();
    let report = db.ingest_frames("static", &frames);
    assert_eq!(report.objects, 0, "nothing moves, nothing indexed");
    assert!(report.background_nodes >= 3);
    let r = db.query(
        Query::knn(5)
            .trajectory(&[Point2::new(1.0, 1.0)])
            .with_cost(),
    );
    assert!(r.hits.is_empty());
    assert_eq!(
        r.cost.unwrap().distance_calls,
        0,
        "empty index does no work"
    );
}
