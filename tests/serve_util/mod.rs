//! Shared socket-level helpers for the `serve_*` integration suites.
//!
//! Every read goes through a hard timeout: a test that would block
//! forever (a wedged worker, a dropped response) panics with a clear
//! message instead of hanging CI.

#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use strg::obs::Json;
use strg::prelude::*;
use strg::serve::{wire, ServeConfig, Server, ServerHandle};

/// Generous upper bound — only reached when the server is wedged.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Boots a server on an ephemeral port and runs it on its own thread.
pub fn boot(
    db: impl Into<Arc<VideoDatabase>>,
    cfg: ServeConfig,
) -> (ServerHandle, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", db, cfg).expect("bind ephemeral port");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (handle, join)
}

/// A small synthetic database: one lab clip and one traffic clip.
pub fn two_clip_db() -> VideoDatabase {
    let db = VideoDatabase::new(DbOptions::new());
    ingest_scene(&db, "lab", "cam0", 3);
    ingest_scene(&db, "traffic", "cam1", 7);
    db
}

/// Ingests one synthetic scenario clip (2 actors, 50 frames).
pub fn ingest_scene(db: &VideoDatabase, scene: &str, name: &str, seed: u64) {
    let clip = wire::make_clip(scene, name, 2, 50, seed).expect("known scene");
    db.ingest_clip(&clip, seed);
}

/// One protocol connection: newline-delimited request/response pairs.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(IO_TIMEOUT))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { reader, writer }
    }

    /// Sends one request line and waits for its response line.
    pub fn send(&mut self, line: &str) -> String {
        self.send_raw(line.as_bytes());
        self.send_raw(b"\n");
        self.recv()
            .unwrap_or_else(|| panic!("connection closed instead of answering {line:?}"))
    }

    /// Writes raw bytes without framing (for fault injection).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    /// Reads one response line; `None` means the server closed the
    /// connection. Panics (instead of hanging) after [`IO_TIMEOUT`].
    pub fn recv(&mut self) -> Option<String> {
        let mut out = String::new();
        match self.reader.read_line(&mut out) {
            Ok(0) => None,
            Ok(_) => Some(out.trim_end().to_string()),
            Err(e) => panic!("server did not answer within {IO_TIMEOUT:?}: {e}"),
        }
    }
}

/// One-shot request on a fresh connection.
pub fn call(addr: SocketAddr, line: &str) -> String {
    Client::connect(addr).send(line)
}

/// The value under `key` of a JSON object (panics when absent).
pub fn obj_get<'a>(j: &'a Json, key: &str) -> &'a Json {
    match j {
        Json::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no key {key:?} in {}", j.render())),
        other => panic!("expected object, got {}", other.render()),
    }
}

/// Unwraps a `Json::U64`.
pub fn as_u64(j: &Json) -> u64 {
    match j {
        Json::U64(n) => *n,
        other => panic!("expected unsigned integer, got {}", other.render()),
    }
}

/// Everything before the trailing `,"metrics":{..}` of an ingest/stats
/// body. The metrics snapshot is process-local (in-memory counters), so
/// byte-comparisons across database instances strip it; all other fields
/// stay under byte equality.
pub fn strip_metrics(body: &str) -> &str {
    match body.find(",\"metrics\":") {
        Some(i) => &body[..i],
        None => body,
    }
}
