//! Concurrency: the database must serve queries from many threads, also
//! while another thread ingests — the `parking_lot::RwLock` discipline the
//! pipeline documents.

use std::sync::Arc;

use strg::prelude::*;

fn clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("cam{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 2,
            frames: 50,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

#[test]
fn parallel_readers_agree() {
    let db = Arc::new(VideoDatabase::new(DbOptions::new()));
    db.ingest_clip(&clip(1), 1);
    let og = db.og(0).expect("first og");
    let q = og.centroid_series();

    let baseline = db.query(Query::knn(3).trajectory(&q).with_cost());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for _ in 0..25 {
                out.push(db.query(Query::knn(3).trajectory(&q).with_cost()));
            }
            out
        }));
    }
    let base_cost = baseline.cost.expect("with_cost() requested it");
    for h in handles {
        for result in h.join().expect("no panics") {
            assert_eq!(result.hits.len(), baseline.hits.len());
            for (a, b) in result.hits.iter().zip(&baseline.hits) {
                assert_eq!(a.og_id, b.og_id);
            }
            // The index is static here: every reader does the same work.
            assert!(result.cost.unwrap().same_work(&base_cost));
        }
    }
}

#[test]
fn queries_during_ingest_never_see_torn_state() {
    let db = Arc::new(VideoDatabase::new(DbOptions::new()));
    db.ingest_clip(&clip(2), 1);
    let q: Vec<Point2> = (0..20).map(|i| Point2::new(4.0 * i as f64, 80.0)).collect();

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for seed in 10..14u64 {
                db.ingest_clip(&clip(seed), seed);
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let q = q.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    // Every hit must resolve to a live clip and OG.
                    for hit in db.query(Query::knn(5).trajectory(&q)).hits {
                        assert!(db.og(hit.og_id).is_some());
                        assert!(!hit.clip.is_empty());
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer ok");
    for r in readers {
        r.join().expect("reader ok");
    }
    assert_eq!(db.stats().clips, 5);
}

#[test]
fn concurrent_writers_produce_consistent_database() {
    // Multi-writer stress: several threads ingest distinct clips while
    // readers hammer queries and stats. Whatever interleaving the scheduler
    // picks, OG ids must stay unique, every clip must land exactly once,
    // and the final statistics must add up.
    let db = Arc::new(VideoDatabase::new(DbOptions::new()));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let q: Vec<Point2> = (0..20).map(|i| Point2::new(4.0 * i as f64, 80.0)).collect();

    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut reported = Vec::new();
                for i in 0..3u64 {
                    let seed = 100 * (w + 1) + i;
                    reported.push(db.ingest_clip(&clip(seed), seed).objects);
                }
                reported
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let db = Arc::clone(&db);
            let q = q.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let stats = db.stats();
                    // A snapshot can never report more clips than exist.
                    assert!(stats.clips <= 9);
                    for hit in db.query(Query::knn(5).trajectory(&q)).hits {
                        assert!(db.og(hit.og_id).is_some());
                        assert!(!hit.clip.is_empty());
                    }
                }
            })
        })
        .collect();

    let mut total_objects = 0;
    for w in writers {
        total_objects += w.join().expect("writer ok").iter().sum::<usize>();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader ok");
    }

    // Every clip landed exactly once.
    let mut names = db.clip_names();
    assert_eq!(names.len(), 9);
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 9, "no clip ingested twice");

    // Stats add up to what the writers reported.
    let stats = db.stats();
    assert_eq!(stats.clips, 9);
    assert_eq!(stats.objects, total_objects);

    // OG ids are globally unique: querying with a huge k surfaces every
    // object exactly once.
    let all = db.query(Query::knn(total_objects + 10).trajectory(&q)).hits;
    assert_eq!(all.len(), total_objects);
    let mut ids: Vec<u64> = all.iter().map(|h| h.og_id).collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate OG ids across concurrent ingests");
}

#[test]
fn concurrent_ingest_and_removal_stay_consistent() {
    // One thread repeatedly removes clips while another adds new ones and
    // readers resolve hits; ids must never collide or dangle.
    let db = Arc::new(VideoDatabase::new(DbOptions::new()));
    for seed in 0..3u64 {
        db.ingest_clip(&clip(seed), seed);
    }
    let q: Vec<Point2> = (0..20).map(|i| Point2::new(4.0 * i as f64, 80.0)).collect();

    let adder = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for seed in 50..54u64 {
                db.ingest_clip(&clip(seed), seed);
            }
        })
    };
    let remover = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for seed in 0..3u64 {
                db.remove_clip(&format!("cam{seed}"));
            }
        })
    };
    let reader = {
        let db = Arc::clone(&db);
        let q = q.clone();
        std::thread::spawn(move || {
            for _ in 0..60 {
                for hit in db.query(Query::knn(5).trajectory(&q)).hits {
                    // A hit observed in a snapshot must resolve in that
                    // snapshot; by the time we re-resolve it the clip may
                    // be gone, which must yield None, never a panic.
                    let _ = db.og(hit.og_id);
                }
            }
        })
    };
    adder.join().expect("adder ok");
    remover.join().expect("remover ok");
    reader.join().expect("reader ok");

    let stats = db.stats();
    assert_eq!(stats.clips, 4, "3 removed, 4 added on top of 3");
    let all = db.query(Query::knn(1000).trajectory(&q)).hits;
    assert_eq!(all.len(), stats.objects);
    let mut ids: Vec<u64> = all.iter().map(|h| h.og_id).collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n);
    for name in db.clip_names() {
        let seed: u64 = name.trim_start_matches("cam").parse().unwrap();
        assert!((50..54).contains(&seed), "only added clips survive: {name}");
    }
}
