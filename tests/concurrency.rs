//! Concurrency: the database must serve queries from many threads, also
//! while another thread ingests — the `parking_lot::RwLock` discipline the
//! pipeline documents.

use std::sync::Arc;

use strg::prelude::*;

fn clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("cam{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 2,
            frames: 50,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

#[test]
fn parallel_readers_agree() {
    let db = Arc::new(VideoDatabase::new(VideoDbConfig::default()));
    db.ingest_clip(&clip(1), 1);
    let og = db.og(0).expect("first og");
    let q = og.centroid_series();

    let baseline = db.query_knn(&q, 3);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for _ in 0..25 {
                out.push(db.query_knn(&q, 3));
            }
            out
        }));
    }
    for h in handles {
        for result in h.join().expect("no panics") {
            assert_eq!(result.len(), baseline.len());
            for (a, b) in result.iter().zip(&baseline) {
                assert_eq!(a.og_id, b.og_id);
            }
        }
    }
}

#[test]
fn queries_during_ingest_never_see_torn_state() {
    let db = Arc::new(VideoDatabase::new(VideoDbConfig::default()));
    db.ingest_clip(&clip(2), 1);
    let q: Vec<Point2> = (0..20).map(|i| Point2::new(4.0 * i as f64, 80.0)).collect();

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for seed in 10..14u64 {
                db.ingest_clip(&clip(seed), seed);
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let q = q.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    // Every hit must resolve to a live clip and OG.
                    for hit in db.query_knn(&q, 5) {
                        assert!(db.og(hit.og_id).is_some());
                        assert!(!hit.clip.is_empty());
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer ok");
    for r in readers {
        r.join().expect("reader ok");
    }
    assert_eq!(db.stats().clips, 5);
}
