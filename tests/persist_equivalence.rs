//! Persistence equivalence suite: the STRGDB v2 fast reopen is a
//! *physical* optimization only.
//!
//! Loading a v2 file deserializes the built index (`ReopenMode::Fast`);
//! setting `STRG_PERSIST_V1=1` forces the legacy rebuild-on-load path,
//! which re-clusters from the stored OGs exactly as a v1 text file load
//! does. The two loaders — and a v1 file of the same database — must be
//! indistinguishable in every observable: hits, logical [`QueryCost`]s,
//! stats, clip names, and the bytes a re-save produces. A serialization
//! bug (missed field, drifted order, stale summary) shows up here as a
//! bit diff.
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`, so byte-stability of the format across thread counts
//! is pinned too.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use strg::prelude::*;

/// Serializes every test that toggles `STRG_PERSIST_V1`: the flag is
/// process global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with `STRG_PERSIST_V1=1` set, restoring the environment.
fn with_rebuild_hatch<T>(f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::set_var(PERSIST_V1_ENV, "1");
    let out = f();
    std::env::remove_var(PERSIST_V1_ENV);
    out
}

/// Runs `f` with the hatch guaranteed unset (still under the lock, so a
/// concurrent hatched test can't interleave).
fn without_rebuild_hatch<T>(f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::remove_var(PERSIST_V1_ENV);
    f()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("strg_persist_eq_{name}_{}", std::process::id()))
}

fn demo_clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("clip-{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 1 + (seed as usize % 2),
            frames: 40,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

const CLIP_SEEDS: [u64; 3] = [5, 9, 14];

fn ingest_all(db: &dyn Database) {
    for seed in CLIP_SEEDS {
        db.ingest_clip(&demo_clip(seed), seed);
    }
}

fn trajectories(db: &dyn Database) -> Vec<Vec<Point2>> {
    let stored = db.og(0).expect("og 0 stored").centroid_series();
    let line: Vec<Point2> = (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect();
    vec![stored, line]
}

fn assert_hits_eq(a: &[QueryHit], b: &[QueryHit], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: hit count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.clip, y.clip, "{ctx}: hit clip");
        assert_eq!(x.og_id, y.og_id, "{ctx}: hit id");
        assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{ctx}: hit distance");
    }
}

fn assert_stats_eq(a: &strg::core::DbStats, b: &strg::core::DbStats, ctx: &str) {
    assert_eq!(a.clips, b.clips, "{ctx}: clips");
    assert_eq!(a.objects, b.objects, "{ctx}: objects");
    assert_eq!(a.clusters, b.clusters, "{ctx}: clusters");
    assert_eq!(a.strg_bytes, b.strg_bytes, "{ctx}: strg_bytes");
    assert_eq!(a.index_bytes, b.index_bytes, "{ctx}: index_bytes");
}

/// Every observable of two databases must agree: stats, clip names, and
/// hits + logical costs over k-NN, range, and clip-scoped queries.
fn assert_dbs_equivalent(a: &dyn Database, b: &dyn Database, ctx: &str) {
    assert_stats_eq(&a.stats(), &b.stats(), ctx);
    assert_eq!(a.clip_names(), b.clip_names(), "{ctx}: clip names");
    let shard_a = a.shard_stats();
    let shard_b = b.shard_stats();
    assert_eq!(shard_a.len(), shard_b.len(), "{ctx}: shard count");
    for (i, (x, y)) in shard_a.iter().zip(&shard_b).enumerate() {
        assert_stats_eq(x, y, &format!("{ctx}: shard {i}"));
    }
    for (qi, q) in trajectories(a).iter().enumerate() {
        for k in [1, 5] {
            let ra = a.query(Query::knn(k).trajectory(q).with_cost());
            let rb = b.query(Query::knn(k).trajectory(q).with_cost());
            let ctx = format!("{ctx}: q{qi} knn k={k}");
            assert_hits_eq(&ra.hits, &rb.hits, &ctx);
            let (ca, cb) = (ra.cost.unwrap(), rb.cost.unwrap());
            assert!(ca.same_work(&cb), "{ctx}: cost {ca:?} vs {cb:?}");
        }
        for radius in [20.0, 200.0] {
            let ra = a.query(Query::range(radius).trajectory(q).with_cost());
            let rb = b.query(Query::range(radius).trajectory(q).with_cost());
            let ctx = format!("{ctx}: q{qi} range r={radius}");
            assert_hits_eq(&ra.hits, &rb.hits, &ctx);
            let (ca, cb) = (ra.cost.unwrap(), rb.cost.unwrap());
            assert!(ca.same_work(&cb), "{ctx}: cost {ca:?} vs {cb:?}");
        }
        let clip = &a.clip_names()[0];
        let ra = a.query(Query::knn(3).trajectory(q).in_clip(clip).with_cost());
        let rb = b.query(Query::knn(3).trajectory(q).in_clip(clip).with_cost());
        assert_hits_eq(&ra.hits, &rb.hits, &format!("{ctx}: q{qi} in_clip"));
    }
}

/// v2 fast load ≡ the `STRG_PERSIST_V1=1` rebuild of the same file, ≡ the
/// freshly built database, in every observable — and both loaders re-save
/// the exact original bytes.
#[test]
fn v2_fast_load_matches_rebuild_single_tree() {
    let built = VideoDatabase::new(DbOptions::new());
    ingest_all(&built);
    let path = temp_path("single");
    built.save(&path).expect("save v2");
    let original = std::fs::read(&path).unwrap();

    let fast = without_rebuild_hatch(|| VideoDatabase::load(&path, DbOptions::new()).unwrap());
    assert_eq!(fast.persist_info().reopen, ReopenMode::Fast);
    assert_eq!(fast.persist_info().loaded_format, Some(2));

    let rebuilt = with_rebuild_hatch(|| VideoDatabase::load(&path, DbOptions::new()).unwrap());
    assert_eq!(rebuilt.persist_info().reopen, ReopenMode::Rebuild);
    assert_eq!(rebuilt.persist_info().loaded_format, Some(2));

    assert_dbs_equivalent(&fast, &built, "fast vs built");
    assert_dbs_equivalent(&fast, &rebuilt, "fast vs rebuild");

    // Both loaders re-save the original bytes.
    for (db, name) in [(&fast, "fast"), (&rebuilt, "rebuild")] {
        let out = temp_path(&format!("single_resave_{name}"));
        db.save(&out).unwrap();
        let resaved = std::fs::read(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert_eq!(original, resaved, "{name}: re-saved bytes differ");
    }
    let _ = std::fs::remove_file(&path);
}

/// A v1 text file of the same database loads (rebuild path) into the same
/// observables as the v2 fast load, and the v1 → v2 upgrade is *stable*:
/// once saved as v2, every further `load → save` round-trip is a byte
/// identity. (The upgrade itself is not compared against the original v2
/// save because v1 never stored the OG-internal ids — the one documented
/// lossy field of the legacy format, renumbered on load.)
#[test]
fn v1_file_rebuild_matches_v2_fast_load() {
    let built = VideoDatabase::new(DbOptions::new());
    ingest_all(&built);
    let v2_path = temp_path("upgrade_v2");
    let v1_path = temp_path("upgrade_v1");
    built.save(&v2_path).unwrap();
    built.save_v1(&v1_path).unwrap();

    let from_v1 =
        without_rebuild_hatch(|| VideoDatabase::load(&v1_path, DbOptions::new()).unwrap());
    assert_eq!(from_v1.persist_info().reopen, ReopenMode::Rebuild);
    assert_eq!(from_v1.persist_info().loaded_format, Some(1));
    let from_v2 =
        without_rebuild_hatch(|| VideoDatabase::load(&v2_path, DbOptions::new()).unwrap());
    assert_dbs_equivalent(&from_v2, &from_v1, "v2 fast vs v1 rebuild");

    // Saving the v1-loaded database upgrades it to v2; from there the
    // round-trip is a fixed point.
    let upgraded = temp_path("upgrade_out");
    from_v1.save(&upgraded).unwrap();
    let upgraded_bytes = std::fs::read(&upgraded).unwrap();
    let reloaded =
        without_rebuild_hatch(|| VideoDatabase::load(&upgraded, DbOptions::new()).unwrap());
    assert_eq!(reloaded.persist_info().reopen, ReopenMode::Fast);
    assert_dbs_equivalent(&reloaded, &from_v1, "upgraded reload vs v1 rebuild");
    let roundtrip = temp_path("upgrade_roundtrip");
    reloaded.save(&roundtrip).unwrap();
    let roundtrip_bytes = std::fs::read(&roundtrip).unwrap();
    for p in [&v2_path, &v1_path, &upgraded, &roundtrip] {
        let _ = std::fs::remove_file(p);
    }
    assert_eq!(
        upgraded_bytes, roundtrip_bytes,
        "upgraded v2 file is not a save → load → save fixed point"
    );
}

/// The same contract on a sharded database: fast load ≡ hatched rebuild ≡
/// the built database, and the re-saved directory (manifest + every shard
/// file) is byte-identical.
#[test]
fn v2_fast_load_matches_rebuild_sharded() {
    let built = ShardedDatabase::new(DbOptions::new().shards(3));
    ingest_all(&built);
    let dir = temp_path("sharded");
    built.save(&dir).expect("save sharded");
    let read_dir = |d: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        files
    };
    let original = read_dir(&dir);
    assert_eq!(original.len(), 4, "manifest + 3 shard files");

    let fast = without_rebuild_hatch(|| ShardedDatabase::load(&dir, DbOptions::new()).unwrap());
    assert_eq!(fast.persist_info().reopen, ReopenMode::Fast);
    assert_eq!(fast.persist_info().loaded_format, Some(2));
    let rebuilt = with_rebuild_hatch(|| ShardedDatabase::load(&dir, DbOptions::new()).unwrap());
    assert_eq!(rebuilt.persist_info().reopen, ReopenMode::Rebuild);

    assert_dbs_equivalent(&fast, &built, "sharded fast vs built");
    assert_dbs_equivalent(&fast, &rebuilt, "sharded fast vs rebuild");

    for (db, name) in [(&fast, "fast"), (&rebuilt, "rebuild")] {
        let out = temp_path(&format!("sharded_resave_{name}"));
        db.save(&out).unwrap();
        let resaved = read_dir(&out);
        let _ = std::fs::remove_dir_all(&out);
        assert_eq!(
            original.len(),
            resaved.len(),
            "{name}: re-saved file set differs"
        );
        for ((an, ab), (bn, bb)) in original.iter().zip(&resaved) {
            assert_eq!(an, bn, "{name}: file name");
            assert_eq!(ab, bb, "{name}: {an} bytes differ");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Clip removal leaves non-contiguous root ids in memory; the canonical
/// remap on save must still make `save → load → save` a byte identity and
/// keep the fast loader equivalent to the rebuild path.
#[test]
fn removal_then_save_stays_canonical() {
    let built = VideoDatabase::new(DbOptions::new());
    ingest_all(&built);
    built.ingest_clip(&demo_clip(23), 23);
    assert!(built.remove_clip("clip-9").is_some());
    let path = temp_path("removal");
    built.save(&path).unwrap();
    let original = std::fs::read(&path).unwrap();

    let fast = without_rebuild_hatch(|| VideoDatabase::load(&path, DbOptions::new()).unwrap());
    let rebuilt = with_rebuild_hatch(|| VideoDatabase::load(&path, DbOptions::new()).unwrap());
    assert_dbs_equivalent(&fast, &built, "removal: fast vs built");
    assert_dbs_equivalent(&fast, &rebuilt, "removal: fast vs rebuild");

    let out = temp_path("removal_resave");
    fast.save(&out).unwrap();
    let resaved = std::fs::read(&out).unwrap();
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&path);
    assert_eq!(original, resaved, "re-saved bytes differ after removal");
}

/// `open()` on a v2 file and on a shard directory reports the fast reopen
/// through the object-safe [`Database`] surface.
#[test]
fn open_reports_persist_info() {
    let built = VideoDatabase::new(DbOptions::new());
    built.ingest_clip(&demo_clip(31), 31);
    let path = temp_path("open_file");
    built.save(&path).unwrap();
    let db = without_rebuild_hatch(|| open(&path, DbOptions::new()).unwrap());
    let info = db.persist_info();
    let _ = std::fs::remove_file(&path);
    assert_eq!(info.reopen, ReopenMode::Fast);
    assert_eq!(info.format(), FORMAT_VERSION);

    // A fresh database is Fresh and speaks the current format.
    let fresh = VideoDatabase::new(DbOptions::new());
    assert_eq!(fresh.persist_info().reopen, ReopenMode::Fresh);
    assert_eq!(fresh.persist_info().loaded_format, None);
    assert_eq!(fresh.persist_info().format(), FORMAT_VERSION);
}
