//! Kernel equivalence suite: early abandoning and lower-bound filtering
//! are *physical* optimizations only.
//!
//! `STRG_NO_LB=1` disables the bounded kernels and the summary filter
//! physically while still charging the identical logical costs (DESIGN.md
//! §9). For every query, both modes must therefore produce byte-identical
//! hit lists **and** byte-identical work fields in [`QueryCost`] — on the
//! STRG-Index and on both M-tree variants. An inadmissible lower bound or
//! a kernel that abandons too eagerly shows up here as a hit-list or cost
//! diff.
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`, so the equivalence is also pinned against the frozen
//! parallel band.

use std::sync::{Mutex, MutexGuard, OnceLock};

use strg::prelude::*;

/// Serializes every test that toggles `STRG_NO_LB`: the flag is process
/// global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — once with lower bounds active, once with
/// `STRG_NO_LB=1` — and returns both results, restoring the environment.
fn in_both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    std::env::remove_var(NO_LB_ENV);
    assert!(lower_bounds_enabled());
    let with_lb = f();
    std::env::set_var(NO_LB_ENV, "1");
    assert!(!lower_bounds_enabled());
    let without_lb = f();
    std::env::remove_var(NO_LB_ENV);
    (with_lb, without_lb)
}

fn dataset() -> Vec<(u64, Vec<f64>)> {
    let mut out = Vec::new();
    let mut id = 0;
    for g in 0..4 {
        let base = 90.0 * g as f64;
        for i in 0..12 {
            out.push((id, vec![base + 0.5 * i as f64, base + 1.0, base + 2.0]));
            id += 1;
        }
    }
    out
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![91.0, 92.0, 93.0],
        vec![0.0, 0.0, 0.0],
        vec![181.0, 182.0, 183.0],
        vec![500.0, 1.0, 2.0],
    ]
}

#[test]
fn strg_index_knn_identical_without_lb() {
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), dataset());
    let mut kernels_fired = false;
    for q in queries() {
        for k in [1, 5, 48] {
            let (a, b) = in_both_modes(|| idx.knn_with_cost(&q, k));
            assert_eq!(a.0.len(), b.0.len(), "k {k}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "k {k}: hit id");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k {k}: hit distance");
            }
            assert!(
                a.1.same_work(&b.1),
                "k {k}: cost diverged: {:?} vs {:?}",
                a.1,
                b.1
            );
            kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
        }
    }
    assert!(
        kernels_fired,
        "no query exercised lb_pruned or early_abandoned — the suite is vacuous"
    );
}

#[test]
fn strg_index_range_identical_without_lb() {
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), dataset());
    let mut kernels_fired = false;
    for q in queries() {
        for radius in [0.0, 2.0, 5.0, 15.0, 1e6] {
            let (a, b) = in_both_modes(|| idx.range_with_cost(&q, radius));
            assert_eq!(a.0.len(), b.0.len(), "r {radius}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "r {radius}: hit id");
                assert_eq!(
                    x.dist.to_bits(),
                    y.dist.to_bits(),
                    "r {radius}: hit distance"
                );
            }
            assert!(
                a.1.same_work(&b.1),
                "r {radius}: cost diverged: {:?} vs {:?}",
                a.1,
                b.1
            );
            kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
        }
    }
    assert!(kernels_fired, "range never exercised the bounded kernels");
}

#[test]
fn mtree_identical_without_lb() {
    let data = dataset();
    for cfg in [MTreeConfig::random(1), MTreeConfig::sampling(1)] {
        let tree = MTree::bulk_insert(EgedMetric::<f64>::new(), cfg, data.clone());
        let mut kernels_fired = false;
        for q in queries() {
            for k in [1, 5, 10] {
                let (a, b) = in_both_modes(|| tree.knn_with_cost(&q, k));
                assert_eq!(a.0, b.0, "knn k {k}: hits diverged");
                assert!(
                    a.1.same_work(&b.1),
                    "knn k {k}: cost diverged: {:?} vs {:?}",
                    a.1,
                    b.1
                );
                kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
            }
            for radius in [0.0, 15.0, 120.0] {
                let (a, b) = in_both_modes(|| tree.range_with_cost(&q, radius));
                assert_eq!(a.0, b.0, "range r {radius}: hits diverged");
                assert!(
                    a.1.same_work(&b.1),
                    "range r {radius}: cost diverged: {:?} vs {:?}",
                    a.1,
                    b.1
                );
                kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
            }
        }
        assert!(
            kernels_fired,
            "{cfg:?}: M-tree never exercised the bounded kernels"
        );
    }
}

/// The conservation partition holds with the kernels active *and* under
/// the hatch — `lb_pruned` joins `distance_calls` and `pruned` as the
/// third class of the per-record accounting.
#[test]
fn conservation_holds_in_both_modes() {
    let data = dataset();
    let n = data.len() as u64;
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), data);
    let clusters = idx.cluster_count() as u64;
    for k in [1, 5, 48] {
        let (a, b) = in_both_modes(|| idx.knn_with_cost(&[91.0, 92.0, 93.0], k).1);
        for (mode, cost) in [("lb", &a), ("no-lb", &b)] {
            assert_eq!(
                cost.distance_calls + cost.pruned + cost.lb_pruned,
                n + clusters,
                "k {k} mode {mode}: conservation"
            );
            assert!(
                cost.early_abandoned <= cost.distance_calls,
                "k {k} mode {mode}: abandoned calls are still calls"
            );
        }
    }
}
