//! Kernel equivalence suite: early abandoning and lower-bound filtering
//! are *physical* optimizations only.
//!
//! `STRG_NO_LB=1` disables the bounded kernels and the summary filter
//! physically while still charging the identical logical costs (DESIGN.md
//! §9). For every query, both modes must therefore produce byte-identical
//! hit lists **and** byte-identical work fields in [`QueryCost`] — on the
//! STRG-Index and on both M-tree variants. An inadmissible lower bound or
//! a kernel that abandons too eagerly shows up here as a hit-list or cost
//! diff.
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`, so the equivalence is also pinned against the frozen
//! parallel band.

use std::sync::{Mutex, MutexGuard, OnceLock};

use strg::distance::{simd_enabled, SCALAR_ENV};
use strg::prelude::*;

/// Serializes every test that toggles `STRG_NO_LB`: the flag is process
/// global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — once with lower bounds active, once with
/// `STRG_NO_LB=1` — and returns both results, restoring the environment.
fn in_both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    std::env::remove_var(NO_LB_ENV);
    assert!(lower_bounds_enabled());
    let with_lb = f();
    std::env::set_var(NO_LB_ENV, "1");
    assert!(!lower_bounds_enabled());
    let without_lb = f();
    std::env::remove_var(NO_LB_ENV);
    (with_lb, without_lb)
}

fn dataset() -> Vec<(u64, Vec<f64>)> {
    let mut out = Vec::new();
    let mut id = 0;
    for g in 0..4 {
        let base = 90.0 * g as f64;
        for i in 0..12 {
            out.push((id, vec![base + 0.5 * i as f64, base + 1.0, base + 2.0]));
            id += 1;
        }
    }
    out
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![91.0, 92.0, 93.0],
        vec![0.0, 0.0, 0.0],
        vec![181.0, 182.0, 183.0],
        vec![500.0, 1.0, 2.0],
    ]
}

#[test]
fn strg_index_knn_identical_without_lb() {
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), dataset());
    let mut kernels_fired = false;
    for q in queries() {
        for k in [1, 5, 48] {
            let (a, b) = in_both_modes(|| idx.knn_with_cost(&q, k));
            assert_eq!(a.0.len(), b.0.len(), "k {k}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "k {k}: hit id");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k {k}: hit distance");
            }
            assert!(
                a.1.same_work(&b.1),
                "k {k}: cost diverged: {:?} vs {:?}",
                a.1,
                b.1
            );
            kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
        }
    }
    assert!(
        kernels_fired,
        "no query exercised lb_pruned or early_abandoned — the suite is vacuous"
    );
}

#[test]
fn strg_index_range_identical_without_lb() {
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), dataset());
    let mut kernels_fired = false;
    for q in queries() {
        for radius in [0.0, 2.0, 5.0, 15.0, 1e6] {
            let (a, b) = in_both_modes(|| idx.range_with_cost(&q, radius));
            assert_eq!(a.0.len(), b.0.len(), "r {radius}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "r {radius}: hit id");
                assert_eq!(
                    x.dist.to_bits(),
                    y.dist.to_bits(),
                    "r {radius}: hit distance"
                );
            }
            assert!(
                a.1.same_work(&b.1),
                "r {radius}: cost diverged: {:?} vs {:?}",
                a.1,
                b.1
            );
            kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
        }
    }
    assert!(kernels_fired, "range never exercised the bounded kernels");
}

#[test]
fn mtree_identical_without_lb() {
    let data = dataset();
    for cfg in [MTreeConfig::random(1), MTreeConfig::sampling(1)] {
        let tree = MTree::bulk_insert(EgedMetric::<f64>::new(), cfg, data.clone());
        let mut kernels_fired = false;
        for q in queries() {
            for k in [1, 5, 10] {
                let (a, b) = in_both_modes(|| tree.knn_with_cost(&q, k));
                assert_eq!(a.0, b.0, "knn k {k}: hits diverged");
                assert!(
                    a.1.same_work(&b.1),
                    "knn k {k}: cost diverged: {:?} vs {:?}",
                    a.1,
                    b.1
                );
                kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
            }
            for radius in [0.0, 15.0, 120.0] {
                let (a, b) = in_both_modes(|| tree.range_with_cost(&q, radius));
                assert_eq!(a.0, b.0, "range r {radius}: hits diverged");
                assert!(
                    a.1.same_work(&b.1),
                    "range r {radius}: cost diverged: {:?} vs {:?}",
                    a.1,
                    b.1
                );
                kernels_fired |= a.1.lb_pruned + a.1.early_abandoned > 0;
            }
        }
        assert!(
            kernels_fired,
            "{cfg:?}: M-tree never exercised the bounded kernels"
        );
    }
}

/// The conservation partition holds with the kernels active *and* under
/// the hatch — `lb_pruned` joins `distance_calls` and `pruned` as the
/// third class of the per-record accounting.
#[test]
fn conservation_holds_in_both_modes() {
    let data = dataset();
    let n = data.len() as u64;
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), data);
    let clusters = idx.cluster_count() as u64;
    for k in [1, 5, 48] {
        let (a, b) = in_both_modes(|| idx.knn_with_cost(&[91.0, 92.0, 93.0], k).1);
        for (mode, cost) in [("lb", &a), ("no-lb", &b)] {
            assert_eq!(
                cost.distance_calls + cost.pruned + cost.lb_pruned,
                n + clusters,
                "k {k} mode {mode}: conservation"
            );
            assert!(
                cost.early_abandoned <= cost.distance_calls,
                "k {k} mode {mode}: abandoned calls are still calls"
            );
        }
    }
}

/// Runs `f` twice — once on the vectorized kernels (the default), once
/// under `STRG_SCALAR=1` — and returns both results, restoring the
/// environment. Shares [`env_lock`] with the lower-bound toggles: both
/// hatches are process-global.
fn in_simd_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    std::env::remove_var(SCALAR_ENV);
    assert!(simd_enabled());
    let vectorized = f();
    std::env::set_var(SCALAR_ENV, "1");
    assert!(!simd_enabled());
    let scalar = f();
    std::env::remove_var(SCALAR_ENV);
    (vectorized, scalar)
}

/// Point2 trajectories at a scale where every DP row is long enough for
/// the vector bodies (not just their scalar tails) to execute.
fn point_dataset() -> Vec<(u64, Vec<Point2>)> {
    generate_total(60, &SynthConfig::with_noise(0.10), 41)
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect()
}

/// The SIMD DP kernels are byte-identical to the scalar reference on
/// scalar (`f64`) sequences: same hit bits, same logical costs — lane
/// width must never leak into results (DESIGN.md §13).
#[test]
fn strg_index_identical_under_scalar_hatch_f64() {
    let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(4));
    idx.add_segment(Default::default(), dataset());
    for q in queries() {
        for k in [1, 5, 48] {
            let (a, b) = in_simd_modes(|| idx.knn_with_cost(&q, k));
            assert_eq!(a.0.len(), b.0.len(), "k {k}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "k {k}: hit id");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k {k}: hit distance");
            }
            assert!(a.1.same_work(&b.1), "k {k}: cost diverged");
        }
        for radius in [0.0, 2.0, 15.0, 1e6] {
            let (a, b) = in_simd_modes(|| idx.range_with_cost(&q, radius));
            assert_eq!(a.0.len(), b.0.len(), "r {radius}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "r {radius}: hit id");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "r {radius}: distance");
            }
            assert!(a.1.same_work(&b.1), "r {radius}: cost diverged");
        }
    }
}

/// Same on Point2 trajectories: element distances stay on the scalar
/// `hypot` path (not SIMD-reproducible), but the vectorized DP row
/// combines still run — results must not move by a bit. The M-tree
/// baseline shares the kernels, so it is pinned here too.
#[test]
fn strg_index_and_mtree_identical_under_scalar_hatch_point2() {
    let data = point_dataset();
    let queries: Vec<Vec<Point2>> = generate_total(4, &SynthConfig::with_noise(0.10), 1234)
        .items
        .into_iter()
        .map(|q| q.points)
        .collect();

    let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), StrgIndexConfig::with_k(6));
    idx.add_segment(Default::default(), data.clone());
    let tree = MTree::bulk_insert(EgedMetric::<Point2>::new(), MTreeConfig::random(1), data);

    for q in &queries {
        for k in [1, 5, 20] {
            let (a, b) = in_simd_modes(|| idx.knn_with_cost(q, k));
            assert_eq!(a.0.len(), b.0.len(), "k {k}: hit count");
            for (x, y) in a.0.iter().zip(&b.0) {
                assert_eq!(x.og_id, y.og_id, "k {k}: hit id");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k {k}: hit distance");
            }
            assert!(a.1.same_work(&b.1), "k {k}: cost diverged");

            let (ta, tb) = in_simd_modes(|| tree.knn_with_cost(q, k));
            assert_eq!(ta.0, tb.0, "M-tree k {k}: hits diverged");
            assert!(ta.1.same_work(&tb.1), "M-tree k {k}: cost diverged");
        }
    }

    // The index construction itself (EM clustering over EGED distances)
    // must also be hatch-invariant: rebuilding under the hatch yields the
    // same tree shape and the same answers.
    let (va, vb) = in_simd_modes(|| {
        let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), StrgIndexConfig::with_k(6));
        idx.add_segment(Default::default(), point_dataset());
        let (hits, cost) = idx.knn_with_cost(&queries[0], 5);
        let bits: Vec<(u64, u64)> = hits.iter().map(|h| (h.og_id, h.dist.to_bits())).collect();
        (idx.cluster_count(), bits, cost)
    });
    assert_eq!(va.0, vb.0, "cluster count diverged under the hatch");
    assert_eq!(va.1, vb.1, "post-build hits diverged under the hatch");
    assert!(va.2.same_work(&vb.2), "post-build cost diverged");
}

/// The vectorized mode-filter interior step (the column-transposed diff
/// walk) is byte-identical to the scalar strided walk: whole-frame
/// segmentations — labels, region statistics, and adjacency — must not
/// move by a bit under `STRG_SCALAR=1`, across radii that exercise the
/// fringe-only, interior, and degenerate (window ≥ frame) regimes.
#[test]
fn segmentation_identical_under_scalar_hatch() {
    let scene = lab_scene(&ScenarioConfig {
        n_actors: 3,
        frames: 6,
        seed: 97,
        ..Default::default()
    });
    let clip = VideoClip {
        name: "simd-pin".into(),
        scene,
        fps: 30.0,
    };
    let frames = clip.render_all(7);
    for radius in [1usize, 2, 3, 200] {
        let cfg = SegmentConfig {
            smooth_radius: radius,
            ..Default::default()
        };
        for (fi, frame) in frames.iter().enumerate() {
            let (a, b) = in_simd_modes(|| segment(frame, &cfg));
            assert_eq!(a.labels, b.labels, "frame {fi} radius {radius}: labels");
            assert_eq!(
                a.adjacency, b.adjacency,
                "frame {fi} radius {radius}: adjacency"
            );
            assert_eq!(
                a.regions.len(),
                b.regions.len(),
                "frame {fi} radius {radius}: region count"
            );
            for (x, y) in a.regions.iter().zip(&b.regions) {
                assert_eq!(x.label, y.label);
                assert_eq!(x.size, y.size);
                assert_eq!(x.color.r.to_bits(), y.color.r.to_bits());
                assert_eq!(x.color.g.to_bits(), y.color.g.to_bits());
                assert_eq!(x.color.b.to_bits(), y.color.b.to_bits());
                assert_eq!(x.centroid.x.to_bits(), y.centroid.x.to_bits());
                assert_eq!(x.centroid.y.to_bits(), y.centroid.y.to_bits());
            }
        }
    }
}
