//! Edge-case behavior of the STRG-Index and M-tree under adversarial data:
//! duplicates, identical sequences, zero-length sequences, extreme values.

use strg::core::StrgIndex;
use strg::graph::BackgroundGraph;
use strg::prelude::*;

fn index_with(items: Vec<(u64, Vec<Point2>)>) -> StrgIndex<Point2, EgedMetric<Point2>> {
    let mut idx = StrgIndex::new(EgedMetric::<Point2>::new(), StrgIndexConfig::with_k(3));
    idx.add_segment(BackgroundGraph::default(), items);
    idx
}

#[test]
fn all_identical_sequences() {
    let seq = vec![Point2::new(5.0, 5.0); 10];
    let items: Vec<(u64, Vec<Point2>)> = (0..20).map(|i| (i, seq.clone())).collect();
    let idx = index_with(items);
    assert_eq!(idx.len(), 20);
    let hits = idx.knn(&seq, 5);
    assert_eq!(hits.len(), 5);
    assert!(hits.iter().all(|h| h.dist < 1e-12));
    // Range 0 returns everything (all at distance 0).
    assert_eq!(idx.range(&seq, 0.0).len(), 20);
}

#[test]
fn empty_sequences_are_indexable() {
    // An OG can degenerate to an empty value sequence; the index must not
    // choke (EGED_M to the empty sequence is the mass of the other).
    let items: Vec<(u64, Vec<Point2>)> = vec![
        (0, vec![]),
        (1, vec![Point2::new(1.0, 0.0)]),
        (2, vec![Point2::new(100.0, 0.0), Point2::new(101.0, 0.0)]),
    ];
    let idx = index_with(items);
    let hits = idx.knn(&[], 3);
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0].og_id, 0, "empty matches empty at distance 0");
    assert!(hits[0].dist < 1e-12);
    assert_eq!(hits[1].og_id, 1, "then the lightest sequence");
}

#[test]
fn extreme_coordinates() {
    let items: Vec<(u64, Vec<Point2>)> = vec![
        (0, vec![Point2::new(1e12, 1e12)]),
        (1, vec![Point2::new(-1e12, -1e12)]),
        (2, vec![Point2::new(0.0, 0.0)]),
    ];
    let idx = index_with(items);
    let hits = idx.knn(&[Point2::new(1.0, 1.0)], 3);
    assert_eq!(hits[0].og_id, 2);
    assert!(hits.iter().all(|h| h.dist.is_finite()));
}

#[test]
fn duplicate_ids_are_tolerated_by_index_layer() {
    // The index itself treats ids as opaque; duplicates are the caller's
    // responsibility (VideoDatabase guarantees uniqueness). Both copies
    // are stored and retrievable.
    let seq = vec![Point2::new(1.0, 1.0)];
    let items = vec![(7u64, seq.clone()), (7u64, seq.clone())];
    let idx = index_with(items);
    assert_eq!(idx.len(), 2);
    let hits = idx.knn(&seq, 2);
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|h| h.og_id == 7));
}

#[test]
fn mtree_handles_identical_and_empty() {
    let seq = vec![0.0f64; 4];
    let mut items: Vec<(u64, Vec<f64>)> = (0..30).map(|i| (i, seq.clone())).collect();
    items.push((30, vec![]));
    let t = MTree::bulk_insert(EgedMetric::new(), MTreeConfig::sampling(2), items);
    assert_eq!(t.len(), 31);
    t.check_invariants();
    let hits = t.knn(&seq, 31);
    assert_eq!(hits.len(), 31);
}

#[test]
fn knn_k_one_is_global_minimum() {
    let ds = generate_total(200, &SynthConfig::with_noise(0.2), 5);
    let items: Vec<(u64, Vec<Point2>)> = ds
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();
    let idx = index_with(items.clone());
    let m = EgedMetric::<Point2>::new();
    for q in generate_total(5, &SynthConfig::with_noise(0.2), 77).series() {
        let best = idx.knn(&q, 1)[0].dist;
        let truth = items
            .iter()
            .map(|(_, s)| m.distance(&q, s))
            .fold(f64::INFINITY, f64::min);
        assert!((best - truth).abs() < 1e-9);
    }
}
