//! Sequential-equivalence suite for the parallel execution layer.
//!
//! Every parallel path in the pipeline (frame → RAG extraction, the EM
//! distance matrix / E-step, leaf keying, and k-NN candidate evaluation)
//! must produce output **identical** to the sequential path, no matter the
//! thread count: chunk results merge in input order and every float
//! reduction runs on the calling thread in that order, so there is nothing
//! for a scheduler to reorder. These tests build the same database at
//! `threads = 1`, `2` and `8` and require the reports, statistics and query
//! answers to agree bit-for-bit.
//!
//! `scripts/ci.sh` additionally runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`, which the `default_config_…` test below picks up via
//! `Threads::Auto`.

use strg::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn clip(seed: u64, actors: usize, frames: usize) -> VideoClip {
    VideoClip {
        name: format!("clip{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: actors,
            frames,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

fn db_with(threads: Threads) -> VideoDatabase {
    VideoDatabase::new(DbOptions::new().threads(threads))
}

fn ingest_all(db: &VideoDatabase, seeds: &[u64]) -> Vec<IngestReport> {
    seeds
        .iter()
        .map(|&s| db.ingest_clip(&clip(s, 2, 50), s))
        .collect()
}

fn assert_reports_equal(a: &IngestReport, b: &IngestReport, ctx: &str) {
    assert_eq!(a.root_id, b.root_id, "{ctx}: root_id");
    assert_eq!(a.objects, b.objects, "{ctx}: objects");
    assert_eq!(
        a.background_nodes, b.background_nodes,
        "{ctx}: background_nodes"
    );
    assert_eq!(a.strg_bytes, b.strg_bytes, "{ctx}: strg_bytes");
}

fn assert_hits_equal(a: &[QueryHit], b: &[QueryHit], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: hit count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.og_id, y.og_id, "{ctx}: og id");
        assert_eq!(x.clip, y.clip, "{ctx}: clip");
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{ctx}: distance must be bit-identical ({} vs {})",
            x.dist,
            y.dist
        );
    }
}

#[test]
fn ingest_reports_identical_across_thread_counts() {
    for seeds in [vec![3], vec![7, 11]] {
        let baseline = ingest_all(&db_with(Threads::Fixed(1)), &seeds);
        for &t in &THREAD_COUNTS[1..] {
            let reports = ingest_all(&db_with(Threads::Fixed(t)), &seeds);
            for (a, b) in baseline.iter().zip(&reports) {
                assert_reports_equal(a, b, &format!("seeds {seeds:?} threads {t}"));
            }
        }
    }
}

#[test]
fn db_stats_identical_across_thread_counts() {
    let seeds = [5, 9];
    let base_db = db_with(Threads::Fixed(1));
    ingest_all(&base_db, &seeds);
    let base = base_db.stats();
    for &t in &THREAD_COUNTS[1..] {
        let db = db_with(Threads::Fixed(t));
        ingest_all(&db, &seeds);
        let stats = db.stats();
        assert_eq!(base.clips, stats.clips, "threads {t}");
        assert_eq!(base.objects, stats.objects, "threads {t}");
        assert_eq!(base.clusters, stats.clusters, "threads {t}");
        assert_eq!(base.strg_bytes, stats.strg_bytes, "threads {t}");
        assert_eq!(base.index_bytes, stats.index_bytes, "threads {t}");
    }
}

#[test]
fn knn_answers_identical_across_thread_counts() {
    let seeds = [13, 17];
    let queries: Vec<Vec<Point2>> = vec![
        (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect(),
        (0..25)
            .map(|i| Point2::new(100.0 - 3.0 * i as f64, 80.0))
            .collect(),
        vec![Point2::new(40.0, 75.0); 10],
    ];
    let base_db = db_with(Threads::Fixed(1));
    ingest_all(&base_db, &seeds);
    for &t in &THREAD_COUNTS[1..] {
        let db = db_with(Threads::Fixed(t));
        ingest_all(&db, &seeds);
        for (qi, q) in queries.iter().enumerate() {
            for k in [1, 3, 100] {
                let a = base_db.query(Query::knn(k).trajectory(q).with_cost());
                let b = db.query(Query::knn(k).trajectory(q).with_cost());
                assert_hits_equal(&a.hits, &b.hits, &format!("query {qi} k {k} threads {t}"));
                // The logical cost must not depend on the thread count.
                assert!(
                    a.cost.unwrap().same_work(&b.cost.unwrap()),
                    "query {qi} k {k} threads {t}: cost diverged"
                );
            }
        }
        // Stored trajectories must find themselves in both databases.
        let n = db.stats().objects as u64;
        for id in 0..n {
            let og = db.og(id).expect("stored");
            let q = og.centroid_series();
            let a = base_db.query(Query::knn(2).trajectory(&q)).hits;
            let b = db.query(Query::knn(2).trajectory(&q)).hits;
            assert_hits_equal(&a, &b, &format!("self-query og {id} threads {t}"));
        }
    }
}

#[test]
fn background_matched_queries_identical_across_thread_counts() {
    let q_frames = clip(23, 1, 30).render_all(4);
    let q: Vec<Point2> = (0..20).map(|i| Point2::new(4.0 * i as f64, 72.0)).collect();
    let base_db = db_with(Threads::Fixed(1));
    ingest_all(&base_db, &[19, 29]);
    let base = base_db.query(
        Query::knn(4)
            .trajectory(&q)
            .with_background(&q_frames)
            .with_cost(),
    );
    for &t in &THREAD_COUNTS[1..] {
        let db = db_with(Threads::Fixed(t));
        ingest_all(&db, &[19, 29]);
        let r = db.query(
            Query::knn(4)
                .trajectory(&q)
                .with_background(&q_frames)
                .with_cost(),
        );
        assert_hits_equal(
            &base.hits,
            &r.hits,
            &format!("background query threads {t}"),
        );
        assert!(
            base.cost.unwrap().same_work(&r.cost.unwrap()),
            "background query threads {t}: cost diverged"
        );
    }
}

/// `Threads::Auto` (the default config) must agree with the pinned
/// sequential build whatever `STRG_THREADS` says — this is the test the CI
/// script runs under `STRG_THREADS=1` and `STRG_THREADS=8`.
#[test]
fn default_config_matches_pinned_sequential() {
    let auto_db = VideoDatabase::new(DbOptions::new());
    let seq_db = db_with(Threads::Fixed(1));
    let a = auto_db.ingest_clip(&clip(37, 2, 50), 37);
    let b = seq_db.ingest_clip(&clip(37, 2, 50), 37);
    assert_reports_equal(&a, &b, "auto vs sequential");
    let q: Vec<Point2> = (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect();
    assert_hits_equal(
        &auto_db.query(Query::knn(5).trajectory(&q)).hits,
        &seq_db.query(Query::knn(5).trajectory(&q)).hits,
        "auto vs sequential knn",
    );
}
