//! Cross-structure consistency: on the same data and the same metric EGED,
//! the STRG-Index exact search, both M-tree policies and a brute-force
//! linear scan must return identical k-NN sets.

use strg::core::StrgIndex;
use strg::graph::BackgroundGraph;
use strg::prelude::*;

fn dataset(n: usize, seed: u64) -> Vec<(u64, Vec<Point2>)> {
    generate_total(n, &SynthConfig::with_noise(0.15), seed)
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect()
}

fn linear_scan(data: &[(u64, Vec<Point2>)], q: &[Point2], k: usize) -> Vec<(u64, f64)> {
    let m = EgedMetric::<Point2>::new();
    let mut all: Vec<(u64, f64)> = data.iter().map(|(id, s)| (*id, m.distance(q, s))).collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[test]
fn all_structures_agree_with_linear_scan() {
    let data = dataset(300, 42);
    let queries = generate_total(10, &SynthConfig::with_noise(0.15), 777).series();

    let mut strg = StrgIndex::new(EgedMetric::<Point2>::new(), StrgIndexConfig::with_k(24));
    strg.add_segment(BackgroundGraph::default(), data.clone());
    let mt_ra = MTree::bulk_insert(
        EgedMetric::<Point2>::new(),
        MTreeConfig::random(5),
        data.clone(),
    );
    let mt_sa = MTree::bulk_insert(
        EgedMetric::<Point2>::new(),
        MTreeConfig::sampling(5),
        data.clone(),
    );

    for q in &queries {
        for k in [1usize, 5, 10] {
            let truth = linear_scan(&data, q, k);
            let si: Vec<f64> = strg.knn(q, k).iter().map(|h| h.dist).collect();
            let ra: Vec<f64> = mt_ra.knn(q, k).iter().map(|n| n.dist).collect();
            let sa: Vec<f64> = mt_sa.knn(q, k).iter().map(|n| n.dist).collect();
            for (i, (_, td)) in truth.iter().enumerate() {
                assert!(
                    (si[i] - td).abs() < 1e-9,
                    "STRG-Index k={k} i={i}: {} vs {td}",
                    si[i]
                );
                assert!(
                    (ra[i] - td).abs() < 1e-9,
                    "MT-RA k={k} i={i}: {} vs {td}",
                    ra[i]
                );
                assert!(
                    (sa[i] - td).abs() < 1e-9,
                    "MT-SA k={k} i={i}: {} vs {td}",
                    sa[i]
                );
            }
        }
    }
}

#[test]
fn counting_confirms_both_indexes_prune() {
    let data = dataset(400, 9);
    let q = generate_total(1, &SynthConfig::with_noise(0.15), 55)
        .series()
        .remove(0);

    let cd1 = CountingDistance::new(EgedMetric::<Point2>::new());
    let mut strg = StrgIndex::new(cd1.clone(), StrgIndexConfig::with_k(48));
    strg.add_segment(BackgroundGraph::default(), data.clone());
    cd1.reset();
    let _ = strg.knn(&q, 5);
    assert!(cd1.count() < 400, "STRG-Index pruned: {}", cd1.count());

    let cd2 = CountingDistance::new(EgedMetric::<Point2>::new());
    let mt = MTree::bulk_insert(cd2.clone(), MTreeConfig::sampling(5), data);
    cd2.reset();
    let _ = mt.knn(&q, 5);
    assert!(cd2.count() < 400, "M-tree pruned: {}", cd2.count());
}

#[test]
fn insert_then_query_consistency() {
    // Build half the data up front, insert the rest, and verify exactness
    // against the full linear scan (exercises the BIC-gated split path).
    let data = dataset(200, 3);
    let (head, tail) = data.split_at(100);
    let mut cfg = StrgIndexConfig::with_k(12);
    cfg.leaf_split_threshold = 12;
    let mut strg = StrgIndex::new(EgedMetric::<Point2>::new(), cfg);
    let root = strg.add_segment(BackgroundGraph::default(), head.to_vec());
    for (id, s) in tail {
        strg.insert(root, *id, s.clone());
    }
    assert_eq!(strg.len(), 200);

    let queries = generate_total(5, &SynthConfig::with_noise(0.15), 321).series();
    for q in &queries {
        let truth = linear_scan(&data, q, 7);
        let got = strg.knn(q, 7);
        for (h, (_, td)) in got.iter().zip(&truth) {
            assert!((h.dist - td).abs() < 1e-9);
        }
    }
}
