//! Observability equivalence suite.
//!
//! Two invariants keep the cost accounting honest:
//!
//! 1. **Exactness** — on a sequential index, `QueryCost::distance_calls`
//!    equals what a wrapping [`CountingDistance`] physically observes: the
//!    recorder is bookkeeping, not estimation.
//! 2. **Thread invariance** — the work fields of every query cost, and the
//!    database's deterministic metrics snapshot, are bit-identical whatever
//!    the thread count. The parallel k-NN path may *evaluate* extra
//!    speculative distances, but it *charges* only the logical evaluations
//!    the sequential algorithm would make (see DESIGN.md §8).
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`; the `default_config_…` test below picks the pin up
//! via `Threads::Auto`.

use strg::prelude::*;

fn dataset() -> Vec<(u64, Vec<f64>)> {
    let mut out = Vec::new();
    let mut id = 0;
    for g in 0..4 {
        let base = 90.0 * g as f64;
        for i in 0..12 {
            out.push((id, vec![base + 0.5 * i as f64, base + 1.0, base + 2.0]));
            id += 1;
        }
    }
    out
}

fn clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("cam{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 2,
            frames: 50,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

fn queries() -> Vec<Vec<Point2>> {
    vec![
        (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect(),
        (0..25)
            .map(|i| Point2::new(100.0 - 3.0 * i as f64, 80.0))
            .collect(),
        vec![Point2::new(40.0, 75.0); 10],
    ]
}

/// Invariant 1: the recorder's distance-call count is exactly the number
/// of `distance()` invocations a counting wrapper sees — for k-NN and
/// range, across selectivities.
#[test]
fn cost_matches_counting_distance_exactly() {
    let cd = CountingDistance::new(EgedMetric::<f64>::new());
    let mut idx = StrgIndex::new(
        cd.clone(),
        StrgIndexConfig::with_k(4).with_threads(Threads::Fixed(1)),
    );
    idx.add_segment(Default::default(), dataset());

    for (qi, q) in [
        vec![91.0, 92.0, 93.0],
        vec![0.0, 0.0, 0.0],
        vec![500.0, 1.0, 2.0],
    ]
    .iter()
    .enumerate()
    {
        for k in [1, 5, 48] {
            cd.reset();
            let (hits, cost) = idx.knn_with_cost(q, k);
            assert_eq!(
                cost.distance_calls,
                cd.count(),
                "query {qi} k {k}: recorder vs CountingDistance"
            );
            assert!(hits.len() <= k);
        }
        for radius in [0.0, 15.0, 1e6] {
            cd.reset();
            let (_, cost) = idx.range_with_cost(q, radius);
            assert_eq!(
                cost.distance_calls,
                cd.count(),
                "query {qi} radius {radius}: recorder vs CountingDistance"
            );
        }
    }
}

/// Invariant 1, conservation form: every stored OG is either evaluated,
/// key-band/best-first pruned, or lower-bound pruned — the three counters
/// partition the database (plus one evaluation per cluster centroid), and
/// early abandonment only ever shortens charged evaluations.
#[test]
fn cost_partitions_the_database() {
    let data = dataset();
    let n = data.len() as u64;
    let mut idx = StrgIndex::new(
        EgedMetric::<f64>::new(),
        StrgIndexConfig::with_k(4).with_threads(Threads::Fixed(1)),
    );
    idx.add_segment(Default::default(), data);
    let clusters = idx.cluster_count() as u64;
    for k in [1, 5, 48] {
        let (_, cost) = idx.knn_with_cost(&[91.0, 92.0, 93.0], k);
        assert_eq!(
            cost.distance_calls + cost.pruned + cost.lb_pruned,
            n + clusters,
            "k {k}: every record accounted exactly once"
        );
        assert!(
            cost.early_abandoned <= cost.distance_calls,
            "k {k}: abandoned calls are still calls"
        );
    }
}

/// Invariant 2 at the index level: work fields agree bit-for-bit between
/// a sequential and a parallel index over the same data.
#[test]
fn index_costs_identical_across_thread_counts() {
    let mut seq = StrgIndex::new(
        EgedMetric::<f64>::new(),
        StrgIndexConfig::with_k(4).with_threads(Threads::Fixed(1)),
    );
    seq.add_segment(Default::default(), dataset());
    for threads in [2, 8] {
        let mut par = StrgIndex::new(
            EgedMetric::<f64>::new(),
            StrgIndexConfig::with_k(4).with_threads(Threads::Fixed(threads)),
        );
        par.add_segment(Default::default(), dataset());
        for q in [
            vec![91.0, 92.0, 93.0],
            vec![0.0, 0.0, 0.0],
            vec![181.0, 182.0, 183.0],
        ] {
            for k in [1, 5, 48] {
                let (_, a) = seq.knn_with_cost(&q, k);
                let (_, b) = par.knn_with_cost(&q, k);
                assert!(
                    a.same_work(&b),
                    "knn k {k} threads {threads}: {a:?} vs {b:?}"
                );
            }
            for radius in [0.0, 15.0, 1e6] {
                let (_, a) = seq.range_with_cost(&q, radius);
                let (_, b) = par.range_with_cost(&q, radius);
                assert!(
                    a.same_work(&b),
                    "range r {radius} threads {threads}: {a:?} vs {b:?}"
                );
            }
        }
    }
}

/// Invariant 2 at the database level: after identical ingests and queries,
/// the deterministic snapshot (volatile counters and all timing histograms
/// stripped) renders to byte-identical JSON at every thread count.
#[test]
fn deterministic_snapshot_identical_across_thread_counts() {
    let run = |threads: Threads| {
        let db = VideoDatabase::new(DbOptions::new().threads(threads));
        for seed in [3, 7] {
            db.ingest_clip(&clip(seed), seed);
        }
        for q in queries() {
            db.query(Query::knn(3).trajectory(&q));
            db.query(Query::range(50.0).trajectory(&q));
        }
        db.metrics_snapshot().deterministic_json()
    };
    let base = run(Threads::Fixed(1));
    for t in [2, 8] {
        let other = run(Threads::Fixed(t));
        assert_eq!(
            base, other,
            "deterministic snapshot diverged at {t} threads"
        );
    }
}

/// The test `scripts/ci.sh` pins: `Threads::Auto` (the default config)
/// must agree with the pinned sequential database whatever `STRG_THREADS`
/// says — in hits, in per-query work, and in the deterministic snapshot.
#[test]
fn default_config_costs_match_pinned_sequential() {
    let auto_db = VideoDatabase::new(DbOptions::new());
    let seq_db = VideoDatabase::new(DbOptions::new().threads(Threads::Fixed(1)));
    for seed in [3, 7] {
        auto_db.ingest_clip(&clip(seed), seed);
        seq_db.ingest_clip(&clip(seed), seed);
    }
    for (qi, q) in queries().iter().enumerate() {
        let a = auto_db.query(Query::knn(5).trajectory(q).with_cost());
        let b = seq_db.query(Query::knn(5).trajectory(q).with_cost());
        assert_eq!(a.hits.len(), b.hits.len(), "query {qi}");
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.og_id, y.og_id, "query {qi}");
            assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "query {qi}");
        }
        assert!(
            a.cost.unwrap().same_work(&b.cost.unwrap()),
            "query {qi}: auto vs sequential cost"
        );
    }
    assert_eq!(
        auto_db.metrics_snapshot().deterministic_json(),
        seq_db.metrics_snapshot().deterministic_json(),
        "auto vs sequential deterministic snapshot"
    );
}
