//! Protocol suite: boots `strg-serve` on an ephemeral port and drives
//! ingest → query → stats over real sockets.
//!
//! Pins the determinism-over-the-wire contract (DESIGN.md §11): a server
//! `result` body is **byte-identical** to the one-shot CLI `--json`
//! output for the same database and parameters — the wall-clock
//! `elapsed_ns` field (normalized by `wire::zero_elapsed_ns`) and the
//! process-local `metrics` snapshot are the only exceptions. CI runs
//! this suite under `STRG_THREADS=1` and `STRG_THREADS=8`.

mod serve_util;

use serve_util::*;
use strg::prelude::*;
use strg::serve::protocol::result_slice;
use strg::serve::{json_parse, wire, ServeConfig};

fn v(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("strg_serve_proto_{name}_{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The full lifecycle over one real TCP connection: ingest, duplicate
/// rejection, k-NN and range queries, stats, server metrics, shutdown.
#[test]
fn ingest_query_stats_over_real_sockets() {
    let db = VideoDatabase::new(DbOptions::new());
    let (handle, join) = boot(db, ServeConfig::default());
    let mut c = Client::connect(handle.addr());

    let r = c.send(
        r#"{"id":1,"method":"ingest","params":{"name":"cam1","scene":"lab","actors":2,"frames":50,"seed":3}}"#,
    );
    assert!(r.starts_with(r#"{"ok":true,"id":1,"#), "{r}");
    let body = result_slice(&r).expect("ingest result");
    assert!(body.starts_with(r#"{"clip":"cam1","frames":"#), "{body}");
    assert!(body.contains(r#""objects":"#), "{body}");

    // Duplicate clip names are rejected with a structured `invalid` error.
    let r = c.send(r#"{"id":2,"method":"ingest","params":{"name":"cam1","scene":"lab"}}"#);
    assert!(r.starts_with(r#"{"ok":false,"id":2,"#), "{r}");
    assert!(r.contains(r#""code":"invalid""#), "{r}");
    assert!(r.contains("already exists"), "{r}");

    // k-NN query: hits plus the per-request cost record.
    let r = c.send(r#"{"id":3,"method":"query","params":{"from":"0,80","to":"160,80","k":3}}"#);
    let body = result_slice(&r).expect("query result");
    assert!(body.starts_with(r#"{"hits":["#), "{body}");
    assert!(body.contains(r#""clip":"cam1""#), "{body}");
    for field in [
        "distance_calls",
        "node_accesses",
        "pruned",
        "lb_pruned",
        "early_abandoned",
        "elapsed_ns",
    ] {
        assert!(body.contains(&format!("\"{field}\":")), "{field} in {body}");
    }

    // Range query: same body shape, radius instead of k.
    let r =
        c.send(r#"{"id":4,"method":"query","params":{"from":"0,80","to":"160,80","radius":1e9}}"#);
    let body = result_slice(&r).expect("range result");
    assert!(body.contains(r#""clip":"cam1""#), "{body}");

    let r = c.send(r#"{"id":5,"method":"stats"}"#);
    let body = result_slice(&r).expect("stats result");
    assert!(body.starts_with(r#"{"clips":1,"#), "{body}");

    // The server's own recorder: connection/request/method counters.
    let r = c.send(r#"{"id":6,"method":"metrics"}"#);
    let body = result_slice(&r).expect("metrics result");
    let metrics = json_parse::parse(body).expect("metrics parse");
    let counters = obj_get(&metrics, "counters");
    assert!(as_u64(obj_get(counters, "serve.requests")) >= 6, "{body}");
    assert!(
        as_u64(obj_get(counters, "serve.method.query")) == 2,
        "{body}"
    );

    let r = c.send(r#"{"id":7,"method":"shutdown"}"#);
    assert!(r.contains("shutting down"), "{r}");
    join.join().unwrap().unwrap();
}

/// The determinism-over-the-wire contract, byte for byte:
/// * an ingest body from the server equals the CLI `--json` output for
///   the same parameters (metrics stripped — it is process-local);
/// * query bodies for a database *loaded from the CLI's own file* equal
///   the CLI's, with only `elapsed_ns` normalized;
/// * the database the server saved on ingest round-trips to the same
///   stats as the CLI's file.
#[test]
fn server_bodies_match_cli_json_byte_for_byte() {
    let cli_db = temp_path("cli");
    let srv_db = temp_path("srv");
    let _ = std::fs::remove_file(&cli_db);
    let _ = std::fs::remove_file(&srv_db);

    // CLI side: two clips into a file database, all outputs captured.
    let cli_ing1 = strg_cli::run(&v(&[
        "ingest", "--db", &cli_db, "--scene", "lab", "--name", "cam0", "--actors", "2", "--frames",
        "50", "--seed", "3", "--json",
    ]))
    .expect("cli ingest cam0");
    strg_cli::run(&v(&[
        "ingest", "--db", &cli_db, "--scene", "traffic", "--name", "cam1", "--actors", "2",
        "--frames", "50", "--seed", "7", "--json",
    ]))
    .expect("cli ingest cam1");
    let cli_knn = strg_cli::run(&v(&[
        "query", "--db", &cli_db, "--from", "0,80", "--to", "160,80", "-k", "4", "--json",
    ]))
    .expect("cli knn");
    let cli_range = strg_cli::run(&v(&[
        "query", "--db", &cli_db, "--from", "0,80", "--to", "160,80", "--radius", "900", "--json",
    ]))
    .expect("cli range");
    let cli_clip = strg_cli::run(&v(&[
        "query", "--db", &cli_db, "--from", "0,80", "--to", "160,80", "-k", "2", "--clip", "cam0",
        "--json",
    ]))
    .expect("cli clip query");
    let cli_stats = strg_cli::run(&v(&["stats", "--db", &cli_db, "--json"])).expect("cli stats");

    // Server A: fresh database, same ingest over the socket; the body
    // must match the CLI's ingest output (metrics stripped).
    let (handle, join) = boot(
        VideoDatabase::new(DbOptions::new()),
        ServeConfig {
            db_path: Some(srv_db.clone()),
            ..Default::default()
        },
    );
    let mut c = Client::connect(handle.addr());
    let r = c.send(
        r#"{"id":1,"method":"ingest","params":{"name":"cam0","scene":"lab","actors":2,"frames":50,"seed":3}}"#,
    );
    let srv_ing1 = result_slice(&r).expect("ingest body").to_string();
    assert_eq!(
        strip_metrics(&srv_ing1),
        strip_metrics(&cli_ing1),
        "ingest body: server vs CLI"
    );
    c.send(
        r#"{"id":2,"method":"ingest","params":{"name":"cam1","scene":"traffic","actors":2,"frames":50,"seed":7}}"#,
    );
    c.send(r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();

    // The file the server saved holds the same database as the CLI's.
    let srv_stats = strg_cli::run(&v(&["stats", "--db", &srv_db, "--json"]))
        .expect("stats over the server-saved file");
    assert_eq!(
        strip_metrics(&srv_stats),
        strip_metrics(&cli_stats),
        "server-saved file vs CLI file"
    );

    // Server B: serves the CLI's own file; query bodies must be the very
    // same bytes the CLI printed (elapsed_ns normalized).
    let db = VideoDatabase::load(&cli_db, DbOptions::new()).expect("load cli db");
    let (handle, join) = boot(db, ServeConfig::default());
    let mut c = Client::connect(handle.addr());
    for (req, cli_out, what) in [
        (
            r#"{"id":10,"method":"query","params":{"from":"0,80","to":"160,80","k":4}}"#,
            &cli_knn,
            "knn",
        ),
        (
            r#"{"id":11,"method":"query","params":{"from":"0,80","to":"160,80","radius":900}}"#,
            &cli_range,
            "range",
        ),
        (
            r#"{"id":12,"method":"query","params":{"from":"0,80","to":"160,80","k":2,"clip":"cam0"}}"#,
            &cli_clip,
            "clip-filtered",
        ),
    ] {
        let r = c.send(req);
        let body = result_slice(&r).unwrap_or_else(|| panic!("{what}: no result in {r}"));
        assert_eq!(
            wire::zero_elapsed_ns(body),
            wire::zero_elapsed_ns(cli_out),
            "{what} body: server vs CLI"
        );
    }
    let r = c.send(r#"{"id":13,"method":"stats"}"#);
    let body = result_slice(&r).expect("stats body");
    assert_eq!(
        strip_metrics(body),
        strip_metrics(&cli_stats),
        "stats body: server vs CLI"
    );
    c.send(r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();

    let _ = std::fs::remove_file(&cli_db);
    let _ = std::fs::remove_file(&srv_db);
}

/// Query bodies (hits *and* every cost work field) are bit-identical
/// whether the database and the server pool run 1 thread or 8.
#[test]
fn query_bodies_identical_across_thread_counts() {
    let body_at = |n: usize| {
        let db = VideoDatabase::new(DbOptions::new().threads(Threads::Fixed(n)));
        ingest_scene(&db, "lab", "cam0", 3);
        ingest_scene(&db, "traffic", "cam1", 7);
        let (handle, join) = boot(
            db,
            ServeConfig {
                threads: Threads::Fixed(n),
                ..Default::default()
            },
        );
        let r = call(
            handle.addr(),
            r#"{"id":1,"method":"query","params":{"from":"0,80","to":"160,80","k":5}}"#,
        );
        let body = wire::zero_elapsed_ns(result_slice(&r).expect("query body"));
        call(handle.addr(), r#"{"method":"shutdown"}"#);
        join.join().unwrap().unwrap();
        body
    };
    assert_eq!(body_at(1), body_at(8), "1-thread vs 8-thread wire bytes");
}
