//! Concurrency suite: many clients hammering one server.
//!
//! * Interleaved k-NN/range queries from N concurrent clients — every
//!   response is byte-identical to a sequential replay of the same
//!   request (and to a direct library call), at any `STRG_THREADS`.
//! * `QueryCost` conservation holds *per request* even under
//!   interleaving: `distance_calls + pruned + lb_pruned` covers every
//!   stored object plus every cluster centroid exactly once.
//! * Under burst load the bounded queue sheds work with a structured
//!   `overloaded` error — it never hangs a client (all reads in this
//!   suite carry a hard timeout) and it recovers once drained.

mod serve_util;

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use serve_util::*;
use strg::prelude::*;
use strg::serve::protocol::result_slice;
use strg::serve::{json_parse, wire, ServeConfig};

/// The interleaved request mix: `(params fragment, is full-database)`.
/// Clip-filtered queries search a restricted candidate set, so the
/// conservation partition is only asserted for full-database ones.
fn request_mix() -> Vec<(String, bool)> {
    let mut reqs = Vec::new();
    for k in [1, 3, 5] {
        reqs.push((format!(r#""from":"0,80","to":"160,80","k":{k}"#), true));
    }
    for radius in ["250", "900", "1e9"] {
        reqs.push((
            format!(r#""from":"10,40","to":"150,120","radius":{radius}"#),
            true,
        ));
    }
    reqs.push((
        r#""from":"0,80","to":"160,80","k":2,"clip":"cam0""#.to_string(),
        false,
    ));
    reqs.push((
        r#""from":"0,80","to":"160,80","radius":500,"clip":"cam1""#.to_string(),
        false,
    ));
    reqs.push((
        r#""from":"0,0","to":"100,100","k":4,"steps":10"#.to_string(),
        true,
    ));
    reqs
}

fn query_line(id: u64, params: &str) -> String {
    format!(r#"{{"id":{id},"method":"query","params":{{{params}}}}}"#)
}

/// Asserts the conservation partition on a response body's cost record.
fn assert_conservation(body: &str, records: u64, clusters: u64, what: &str) {
    let parsed = json_parse::parse(body).expect("response body parses");
    let cost = obj_get(&parsed, "cost");
    let evaluated = as_u64(obj_get(cost, "distance_calls"));
    let pruned = as_u64(obj_get(cost, "pruned"));
    let lb_pruned = as_u64(obj_get(cost, "lb_pruned"));
    assert_eq!(
        evaluated + pruned + lb_pruned,
        records + clusters,
        "{what}: every record accounted exactly once"
    );
    assert!(
        as_u64(obj_get(cost, "early_abandoned")) <= evaluated,
        "{what}: abandoned calls are still calls"
    );
}

#[test]
fn concurrent_clients_match_sequential_replay() {
    let db = Arc::new(two_clip_db());
    let stats = db.stats();
    let (records, clusters) = (stats.objects as u64, stats.clusters as u64);
    let (handle, join) = boot(Arc::clone(&db), ServeConfig::default());
    let addr = handle.addr();
    let mix = request_mix();

    // Sequential replay: one client, one request at a time.
    let mut c = Client::connect(addr);
    let expected: Vec<String> = mix
        .iter()
        .enumerate()
        .map(|(i, (params, _))| {
            let r = c.send(&query_line(i as u64, params));
            wire::zero_elapsed_ns(result_slice(&r).expect("sequential result"))
        })
        .collect();

    // Anchor the replay against a direct library call so "deterministic
    // but wrong on both sides" cannot pass: mix[1] is the k=3 query.
    let direct = db.query(
        Query::knn(3)
            .trajectory(&wire::lerp_trajectory(
                wire::parse_point("0,80").unwrap(),
                wire::parse_point("160,80").unwrap(),
                30,
            ))
            .with_cost(),
    );
    assert_eq!(
        expected[1],
        wire::zero_elapsed_ns(&wire::query_json(&direct).render()),
        "sequential replay vs direct db.query"
    );

    // N concurrent clients, each walking the mix from a different offset
    // so distinct requests interleave on the server at the same time.
    let n_clients = 6;
    let handles: Vec<_> = (0..n_clients)
        .map(|t| {
            let mix = mix.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr);
                for j in 0..mix.len() {
                    let i = (j + t) % mix.len();
                    let id = (t as u64) * 1000 + i as u64;
                    let r = c.send(&query_line(id, &mix[i].0));
                    assert!(
                        r.starts_with(&format!(r#"{{"ok":true,"id":{id},"#)),
                        "client {t} request {i}: {r}"
                    );
                    let body = result_slice(&r).expect("concurrent result");
                    assert_eq!(
                        wire::zero_elapsed_ns(body),
                        expected[i],
                        "client {t} request {i}: concurrent vs sequential replay"
                    );
                    if mix[i].1 {
                        assert_conservation(
                            body,
                            records,
                            clusters,
                            &format!("client {t} request {i}"),
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    call(addr, r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

/// Admission control under burst: with one worker and one queue slot, a
/// third simultaneous request is shed with a structured `overloaded`
/// error immediately — no unbounded buffering, no hang — and the server
/// answers normally once the burst drains.
#[test]
fn bounded_queue_sheds_burst_load_and_recovers() {
    let (handle, join) = boot(
        VideoDatabase::new(DbOptions::new()),
        ServeConfig {
            threads: Threads::Fixed(1),
            max_queue: 1,
            ..Default::default()
        },
    );
    let addr = handle.addr();

    // Occupy the single worker with a slow ping...
    let busy = thread::spawn(move || {
        call(
            addr,
            r#"{"id":1,"method":"ping","params":{"delay_ms":1500}}"#,
        )
    });
    thread::sleep(Duration::from_millis(300));
    // ...fill the single queue slot with a second...
    let queued = thread::spawn(move || call(addr, r#"{"id":2,"method":"ping"}"#));
    thread::sleep(Duration::from_millis(300));
    // ...so a third is rejected, with the structured error, right away.
    let start = std::time::Instant::now();
    let r = call(addr, r#"{"id":3,"method":"ping"}"#);
    assert!(
        r.starts_with(r#"{"ok":false,"id":3,"#) && r.contains(r#""code":"overloaded""#),
        "{r}"
    );
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "reject must be immediate, took {:?}",
        start.elapsed()
    );

    // The admitted requests both complete...
    assert!(busy.join().unwrap().contains("pong"));
    assert!(queued.join().unwrap().contains("pong"));
    // ...the server recovers once drained...
    assert!(call(addr, r#"{"id":4,"method":"ping"}"#).contains("pong"));
    // ...and the shed request is visible in the server's metrics.
    let m = call(addr, r#"{"id":5,"method":"metrics"}"#);
    let body = result_slice(&m).expect("metrics body");
    let parsed = json_parse::parse(body).expect("metrics parse");
    assert!(
        as_u64(obj_get(obj_get(&parsed, "counters"), "serve.rejects")) >= 1,
        "{body}"
    );

    call(addr, r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

/// A burst far beyond capacity: every request gets *an* answer (pong or
/// `overloaded`) within the timeout — the server never wedges.
#[test]
fn oversubscribed_burst_always_answers() {
    let (handle, join) = boot(
        VideoDatabase::new(DbOptions::new()),
        ServeConfig {
            threads: Threads::Fixed(1),
            max_queue: 1,
            ..Default::default()
        },
    );
    let addr = handle.addr();
    let burst = 8;
    let clients: Vec<_> = (0..burst)
        .map(|i| {
            thread::spawn(move || {
                call(
                    addr,
                    &format!(r#"{{"id":{i},"method":"ping","params":{{"delay_ms":300}}}}"#),
                )
            })
        })
        .collect();
    let replies: Vec<String> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let pongs = replies.iter().filter(|r| r.contains("pong")).count();
    let shed = replies
        .iter()
        .filter(|r| r.contains(r#""code":"overloaded""#))
        .count();
    assert_eq!(pongs + shed, burst, "every request answered: {replies:?}");
    assert!(pongs >= 1, "some work admitted: {replies:?}");

    call(addr, r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}
