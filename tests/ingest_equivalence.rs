//! Ingest equivalence suite: the fast hot-path kernels are *physical*
//! optimizations only.
//!
//! `STRG_NAIVE_SEGMENT=1` switches the ingest pipeline back to the naïve
//! reference implementations — the `O(r^2)`-per-pixel mode filter and box
//! blur rescans, and one-at-a-time sorted leaf insertion in
//! `add_segment` — while the default path runs the sliding-histogram /
//! separable running-sum kernels through reusable [`SegScratch`] arenas
//! and bulk sort-once leaf loading (DESIGN.md §10). Both modes must
//! produce **byte-identical** segmentations, RAGs, index layouts, metrics,
//! and query hits, at `STRG_THREADS=1` and `8`.
//!
//! `scripts/ci.sh` runs this binary under both thread counts so the
//! equivalence is also pinned against the frozen parallel band.

use std::sync::{Mutex, MutexGuard, OnceLock};

use strg::prelude::*;

/// Serializes every test that toggles `STRG_NAIVE_SEGMENT`: the flag is
/// process global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — once on the fast kernels, once with
/// `STRG_NAIVE_SEGMENT=1` — and returns both results, restoring the
/// environment.
fn in_both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    std::env::remove_var(NAIVE_SEGMENT_ENV);
    assert!(!naive_segmentation_enabled());
    let fast = f();
    std::env::set_var(NAIVE_SEGMENT_ENV, "1");
    assert!(naive_segmentation_enabled());
    let naive = f();
    std::env::remove_var(NAIVE_SEGMENT_ENV);
    (fast, naive)
}

/// A deterministic busy test frame: background, blocks, and xorshift
/// speckle noise (exercises smoothing, merging, and adjacency).
fn busy_frame(w: usize, h: usize, seed: u64) -> Frame {
    let mut f = Frame::new(w, h, Pixel::new(28, 36, 52));
    f.fill_rect(
        (w / 6) as isize,
        (h / 6) as isize,
        w / 3,
        h / 2,
        Pixel::new(214, 64, 58),
    );
    f.fill_rect(
        (w / 2) as isize,
        (h / 3) as isize,
        w / 4,
        h / 3,
        Pixel::new(62, 198, 88),
    );
    let mut state = seed | 1;
    for _ in 0..(w * h / 10) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let x = (state % w as u64) as isize;
        let y = ((state >> 16) % h as u64) as isize;
        let v = (state >> 32) as u8;
        f.set(x, y, Pixel::new(v, v.wrapping_mul(5), v.wrapping_add(60)));
    }
    f
}

/// Bit-exact fingerprint of a segmentation: labels, width, adjacency,
/// and per-region `[label, size, color-mix, r-bits, cx-bits, cy-bits]`.
type SegPrint = (Vec<u32>, usize, Vec<(u32, u32)>, Vec<[u64; 6]>);

fn seg_fingerprint(seg: &Segmentation) -> SegPrint {
    let regions = seg
        .regions
        .iter()
        .map(|r| {
            [
                r.label as u64,
                r.size as u64,
                r.color.r.to_bits()
                    ^ r.color.g.to_bits().rotate_left(1)
                    ^ r.color.b.to_bits().rotate_left(2),
                r.color.r.to_bits(),
                r.centroid.x.to_bits(),
                r.centroid.y.to_bits(),
            ]
        })
        .collect();
    (
        seg.labels.clone(),
        seg.width,
        seg.adjacency.clone(),
        regions,
    )
}

/// Bit-exact fingerprint of a RAG (nodes + edges + edge geometry).
fn rag_fingerprint(rag: &Rag) -> Vec<u64> {
    let mut out = vec![rag.frame().0 as u64, rag.node_count() as u64];
    for a in rag.node_attrs() {
        out.push(a.size as u64);
        out.push(a.color.r.to_bits());
        out.push(a.color.g.to_bits());
        out.push(a.color.b.to_bits());
        out.push(a.centroid.x.to_bits());
        out.push(a.centroid.y.to_bits());
    }
    for (u, v, e) in rag.edges() {
        out.push(u.0 as u64);
        out.push(v.0 as u64);
        out.push(e.distance.to_bits());
        out.push(e.orientation.to_bits());
    }
    out
}

#[test]
fn segmentation_identical_in_both_modes() {
    let frames: Vec<Frame> = (0..4).map(|i| busy_frame(80, 60, 1 + i)).collect();
    for cfg in [
        SegmentConfig::default(),
        SegmentConfig {
            smooth_radius: 2,
            ..SegmentConfig::default()
        },
        SegmentConfig {
            smooth_radius: 3,
            quant_levels: 4,
            min_region_size: 40,
        },
    ] {
        for f in &frames {
            let (fast, naive) = in_both_modes(|| seg_fingerprint(&segment(f, &cfg)));
            assert_eq!(fast, naive, "radius {}", cfg.smooth_radius);
        }
    }
}

#[test]
fn box_blur_identical_in_both_modes() {
    for (w, h) in [(1, 1), (13, 1), (1, 17), (80, 60), (160, 120)] {
        let f = busy_frame(w, h, 9);
        for radius in [0, 1, 2, 4, 7] {
            let (fast, naive) = in_both_modes(|| box_blur(&f, radius).pixels().to_vec());
            assert_eq!(fast, naive, "{w}x{h} radius {radius}");
        }
    }
}

#[test]
fn rag_extraction_identical_in_both_modes_at_any_thread_count() {
    let frames: Vec<Frame> = (0..10).map(|i| busy_frame(64, 48, 100 + i)).collect();
    let cfg = SegmentConfig::default();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 8] {
        let (fast, naive) = in_both_modes(|| {
            let (rags, stats) = frames_to_rags_with_stats(&frames, &cfg, Threads::Fixed(threads));
            assert!(stats.workers >= 1);
            assert!(stats.scratch_bytes > 0);
            rags.iter().map(rag_fingerprint).collect::<Vec<_>>()
        });
        assert_eq!(fast, naive, "threads {threads}: fast vs naive RAGs");
        // ... and the frozen parallel band: identical across thread counts.
        match &reference {
            None => reference = Some(fast),
            Some(r) => assert_eq!(r, &fast, "threads {threads}: thread-count band"),
        }
    }
}

/// Full-pipeline equivalence: ingest real scripted clips through
/// [`VideoDatabase`] in both modes at `STRG_THREADS` 1 and 8, comparing OG
/// ids, index statistics, the entire leaf layout bit-for-bit, the
/// deterministic metrics snapshot, and k-NN hits.
#[test]
fn video_database_identical_in_both_modes() {
    let clips: Vec<VideoClip> = [11u64, 23]
        .iter()
        .map(|&seed| VideoClip {
            name: format!("clip{seed}"),
            scene: lab_scene(&ScenarioConfig {
                n_actors: 2,
                frames: 36,
                seed,
                ..ScenarioConfig::default()
            }),
            fps: 30.0,
        })
        .collect();
    let rendered: Vec<Vec<Frame>> = clips.iter().map(|c| c.render_all(5)).collect();

    #[derive(Debug, PartialEq)]
    struct Outcome {
        objects: Vec<usize>,
        stats: (usize, usize, usize, usize, usize),
        leaves: Vec<(u32, u64, u64)>,
        metrics: String,
        hits: Vec<(u64, u64)>,
    }

    let mut reference: Option<Outcome> = None;
    for threads in [1usize, 8] {
        let (fast, naive) = in_both_modes(|| {
            let db = VideoDatabase::new(DbOptions::new().threads(Threads::Fixed(threads)));
            let mut objects = Vec::new();
            for (clip, frames) in clips.iter().zip(&rendered) {
                objects.push(db.ingest_frames(&clip.name, frames).objects);
            }
            let s = db.stats();
            let leaves = db.with_index(|idx| {
                idx.roots()
                    .iter()
                    .flat_map(|r| {
                        r.clusters.iter().flat_map(move |c| {
                            c.leaf
                                .records
                                .iter()
                                .map(move |rec| (r.id * 1000 + c.id, rec.og_id, rec.key.to_bits()))
                        })
                    })
                    .collect::<Vec<_>>()
            });
            let og = db.og(0).expect("og 0 exists");
            let mut hits = Vec::new();
            for k in [1, 3, 50] {
                for h in db
                    .query(Query::knn(k).trajectory(&og.centroid_series()))
                    .hits
                {
                    hits.push((h.og_id, h.dist.to_bits()));
                }
            }
            Outcome {
                objects,
                stats: (s.clips, s.objects, s.clusters, s.strg_bytes, s.index_bytes),
                leaves,
                metrics: db.metrics_snapshot().deterministic_json(),
                hits,
            }
        });
        assert_eq!(fast, naive, "threads {threads}: fast vs naive database");
        assert!(fast.stats.1 >= 2, "enough OGs to be non-vacuous");
        match &reference {
            None => reference = Some(fast),
            Some(r) => assert_eq!(r, &fast, "threads {threads}: thread-count band"),
        }
    }
}

/// Bulk sort-once leaf loading lays records out exactly like one-at-a-time
/// sorted insertion, including the duplicate-key case where stability is
/// what keeps the OG order.
#[test]
fn bulk_leaf_load_matches_incremental_with_duplicate_keys() {
    // Groups of identical sequences → identical keys within each cluster,
    // so the leaf order among them is decided purely by insertion
    // stability.
    let mut ogs: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut id = 0;
    for g in 0..3 {
        let base = 50.0 * g as f64;
        for i in 0..9 {
            // Three repeats of each of three distinct sequences per group.
            let v = (i % 3) as f64;
            ogs.push((id, vec![base + v, base + v, base]));
            id += 1;
        }
    }
    let (fast, naive) = in_both_modes(|| {
        let mut idx = StrgIndex::new(EgedMetric::<f64>::new(), StrgIndexConfig::with_k(3));
        idx.add_segment(Default::default(), ogs.clone());
        idx.roots()
            .iter()
            .flat_map(|r| {
                r.clusters.iter().map(|c| {
                    c.leaf
                        .records
                        .iter()
                        .map(|rec| (rec.og_id, rec.key.to_bits()))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(fast, naive, "leaf layouts diverged");
    // Vacuity guard: at least one leaf must actually contain equal
    // adjacent keys, otherwise stability was never exercised.
    let has_dup = fast
        .iter()
        .any(|leaf| leaf.windows(2).any(|w| w[0].1 == w[1].1));
    assert!(has_dup, "no duplicate keys in any leaf — test is vacuous");
    // Keys are sorted ascending in every leaf.
    for leaf in &fast {
        for w in leaf.windows(2) {
            assert!(f64::from_bits(w[0].1) <= f64::from_bits(w[1].1));
        }
    }
}
