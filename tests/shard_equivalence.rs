//! Shard equivalence suite: sharding is a *physical* layout choice only.
//!
//! A [`ShardedDatabase`] must be indistinguishable from the single-tree
//! [`VideoDatabase`] in every observable except wall-clock: `shards(1)`
//! reproduces the plain database bit-for-bit (hits **and** costs), raising
//! the shard count never changes a hit list, the logical cost counting is
//! identical at any `STRG_THREADS` setting, and the shard-envelope filter
//! (`STRG_NO_SHARD_LB=1` escape hatch, DESIGN.md §12) never changes a
//! result — an inadmissible aggregate envelope shows up here as a hit-list
//! or cost diff.
//!
//! `scripts/ci.sh` runs this binary under `STRG_THREADS=1` and
//! `STRG_THREADS=8`, so the equivalence is also pinned against the frozen
//! parallel band.

use std::sync::{Mutex, MutexGuard, OnceLock};

use strg::core::shard::route;
use strg::core::shard::sharded_knn;
use strg::prelude::*;

/// Serializes every test that toggles `STRG_NO_SHARD_LB`: the flag is
/// process global, so two modes must never overlap in time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — once with the shard envelope filter active, once with
/// `STRG_NO_SHARD_LB=1` — and returns both results, restoring the
/// environment.
fn in_both_shard_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = env_lock();
    std::env::remove_var(NO_SHARD_LB_ENV);
    assert!(shard_bounds_enabled());
    let with_filter = f();
    std::env::set_var(NO_SHARD_LB_ENV, "1");
    assert!(!shard_bounds_enabled());
    let without_filter = f();
    std::env::remove_var(NO_SHARD_LB_ENV);
    (with_filter, without_filter)
}

fn demo_clip(seed: u64) -> VideoClip {
    VideoClip {
        name: format!("demo{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 2,
            frames: 36,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

const CLIP_SEEDS: [u64; 4] = [3, 7, 11, 19];

fn ingest_all(db: &dyn Database) {
    for seed in CLIP_SEEDS {
        db.ingest_clip(&demo_clip(seed), seed);
    }
}

/// Query trajectories: a stored series (self-query), a synthetic line, and
/// a far-away outlier.
fn trajectories(db: &dyn Database) -> Vec<Vec<Point2>> {
    let stored = db.og(0).expect("og 0 stored").centroid_series();
    let line: Vec<Point2> = (0..25).map(|i| Point2::new(3.0 * i as f64, 70.0)).collect();
    let far: Vec<Point2> = (0..10)
        .map(|i| Point2::new(900.0 + i as f64, 900.0))
        .collect();
    vec![stored, line, far]
}

fn run(db: &dyn Database, q: Query) -> (Vec<QueryHit>, QueryCost) {
    let r = db.query(q.with_cost());
    let cost = r.cost.expect("with_cost() requested it");
    (r.hits, cost)
}

fn assert_hits_eq(a: &[QueryHit], b: &[QueryHit], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: hit count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.clip, y.clip, "{ctx}: hit clip");
        assert_eq!(x.og_id, y.og_id, "{ctx}: hit id");
        assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{ctx}: hit distance");
    }
}

/// `shards(1)` is byte-identical to the plain single-tree database: same
/// hits, same logical costs, for k-NN, range and clip-scoped queries.
#[test]
fn one_shard_matches_plain_database() {
    let plain = VideoDatabase::new(DbOptions::new());
    let sharded = ShardedDatabase::new(DbOptions::new().shards(1));
    ingest_all(&plain);
    ingest_all(&sharded);
    assert_eq!(sharded.shard_count(), 1);

    for q in trajectories(&plain) {
        for k in [1, 5] {
            let (ha, ca) = run(&plain, Query::knn(k).trajectory(&q));
            let (hb, cb) = run(&sharded, Query::knn(k).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("knn k={k}"));
            assert!(ca.same_work(&cb), "knn k={k}: {ca:?} vs {cb:?}");
        }
        for radius in [20.0, 200.0] {
            let (ha, ca) = run(&plain, Query::range(radius).trajectory(&q));
            let (hb, cb) = run(&sharded, Query::range(radius).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("range r={radius}"));
            assert!(ca.same_work(&cb), "range r={radius}: {ca:?} vs {cb:?}");
        }
        let (ha, ca) = run(&plain, Query::knn(3).trajectory(&q).in_clip("demo3"));
        let (hb, cb) = run(&sharded, Query::knn(3).trajectory(&q).in_clip("demo3"));
        assert_hits_eq(&ha, &hb, "clip-scoped knn");
        assert!(ca.same_work(&cb), "clip-scoped knn: {ca:?} vs {cb:?}");
    }
}

/// Raising the shard count redistributes records but never changes a hit
/// list: the global OG-id allocator keeps ids stable and the fan-out merge
/// reproduces the single-tree ranking.
#[test]
fn shard_count_never_changes_hits() {
    let one = ShardedDatabase::new(DbOptions::new().shards(1));
    let four = ShardedDatabase::new(DbOptions::new().shards(4));
    ingest_all(&one);
    ingest_all(&four);
    assert_eq!(four.shard_count(), 4);
    assert_eq!(one.stats().objects, four.stats().objects);

    for q in trajectories(&one) {
        for k in [1, 5] {
            let (ha, _) = run(&one, Query::knn(k).trajectory(&q));
            let (hb, _) = run(&four, Query::knn(k).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("knn k={k}"));
        }
        for radius in [20.0, 200.0] {
            let (ha, _) = run(&one, Query::range(radius).trajectory(&q));
            let (hb, _) = run(&four, Query::range(radius).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("range r={radius}"));
        }
        let (ha, _) = run(&one, Query::knn(3).trajectory(&q).in_clip("demo7"));
        let (hb, _) = run(&four, Query::knn(3).trajectory(&q).in_clip("demo7"));
        assert_hits_eq(&ha, &hb, "clip-scoped knn");
    }
}

/// The fan-out's logical cost counting is bit-identical at any thread
/// count: the speculative parallel path replays the sequential decision
/// sequence over prefetched results and never charges speculation.
#[test]
fn fan_out_costs_identical_across_thread_counts() {
    let seq = ShardedDatabase::new(DbOptions::new().shards(4).threads(Threads::Fixed(1)));
    let par = ShardedDatabase::new(DbOptions::new().shards(4).threads(Threads::Fixed(8)));
    ingest_all(&seq);
    ingest_all(&par);

    for q in trajectories(&seq) {
        for k in [1, 5] {
            let (ha, ca) = run(&seq, Query::knn(k).trajectory(&q));
            let (hb, cb) = run(&par, Query::knn(k).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("knn k={k}"));
            assert!(ca.same_work(&cb), "knn k={k}: {ca:?} vs {cb:?}");
        }
        for radius in [20.0, 200.0] {
            let (ha, ca) = run(&seq, Query::range(radius).trajectory(&q));
            let (hb, cb) = run(&par, Query::range(radius).trajectory(&q));
            assert_hits_eq(&ha, &hb, &format!("range r={radius}"));
            assert!(ca.same_work(&cb), "range r={radius}: {ca:?} vs {cb:?}");
        }
    }
}

/// The shard envelope filter is a physical optimization only: disabling it
/// with `STRG_NO_SHARD_LB=1` (which opens every shard speculatively but
/// charges the identical logical costs) must produce byte-identical hit
/// lists and work fields. An inadmissible envelope bound fails here.
#[test]
fn envelope_filter_matches_no_shard_lb_hatch() {
    let db = ShardedDatabase::new(DbOptions::new().shards(4));
    ingest_all(&db);

    for q in trajectories(&db) {
        for k in [1, 5] {
            let (a, b) = in_both_shard_modes(|| run(&db, Query::knn(k).trajectory(&q)));
            assert_hits_eq(&a.0, &b.0, &format!("knn k={k}"));
            assert!(a.1.same_work(&b.1), "knn k={k}: {:?} vs {:?}", a.1, b.1);
        }
        for radius in [20.0, 200.0] {
            let (a, b) = in_both_shard_modes(|| run(&db, Query::range(radius).trajectory(&q)));
            assert_hits_eq(&a.0, &b.0, &format!("range r={radius}"));
            assert!(
                a.1.same_work(&b.1),
                "range r={radius}: {:?} vs {:?}",
                a.1,
                b.1
            );
        }
    }
}

/// On a self-query workload the bound-ordered fan-out actually skips whole
/// shards: querying the stored series with the globally extreme summary at
/// `k=1` drives the shared cutoff to ~0 after the owning shard, so every
/// shard with a positive envelope bound is pruned — and the hits still
/// match the hatch exactly.
#[test]
fn fan_out_prunes_whole_shards_on_self_queries() {
    const SHARDS: usize = 4;
    let dist = EgedMetric::<Point2>::new();
    let data = generate_total(48, &SynthConfig::with_noise(0.10), 17);
    let items: Vec<(u64, Vec<Point2>)> = data
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();

    let mut chunks: Vec<Vec<(u64, Vec<Point2>)>> = vec![Vec::new(); SHARDS];
    for (id, series) in &items {
        chunks[route(&format!("series-{id}"), SHARDS)].push((*id, series.clone()));
    }
    let shards: Vec<StrgIndex<Point2, EgedMetric<Point2>>> = chunks
        .into_iter()
        .map(|chunk| {
            let mut cfg = StrgIndexConfig::with_k(8.min(chunk.len().max(1)));
            cfg.seed = 17;
            cfg.em_max_iters = 10;
            cfg.em_n_init = 1;
            let mut idx = StrgIndex::new(dist, cfg);
            idx.add_segment(BackgroundGraph::default(), chunk);
            idx
        })
        .collect();
    let idxs: Vec<_> = shards.iter().collect();

    let extreme = items
        .iter()
        .max_by(|a, b| {
            dist.summarize(&a.1)
                .gap_mass
                .total_cmp(&dist.summarize(&b.1).gap_mass)
        })
        .expect("non-empty workload");

    let (a, b) = in_both_shard_modes(|| sharded_knn(&idxs, &extreme.1, 1, Threads::Fixed(1)));
    assert!(
        a.1.shards_pruned >= 1,
        "self-query should prune at least one whole shard: {:?}",
        a.1
    );
    assert!(a.1.same_work(&b.1), "{:?} vs {:?}", a.1, b.1);
    assert_eq!(a.0.len(), b.0.len(), "hit count");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.0, y.0, "hit shard");
        assert_eq!(x.1.og_id, y.1.og_id, "hit id");
        assert_eq!(x.1.dist.to_bits(), y.1.dist.to_bits(), "hit distance");
    }
    assert_eq!(a.0[0].1.og_id, extreme.0, "self-query returns itself first");
    assert_eq!(a.0[0].1.dist, 0.0, "self-distance is zero");
}

/// Directory save/load round-trip: the manifest's shard count wins over
/// `DbOptions::shards`, stats survive, and queries return identical hits.
#[test]
fn sharded_save_load_roundtrip() {
    let dir = std::env::temp_dir().join(format!("strg_shard_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let db = ShardedDatabase::new(DbOptions::new().shards(3));
    ingest_all(&db);
    db.save(&dir).expect("save sharded db");

    let loaded = ShardedDatabase::load(&dir, DbOptions::new().shards(5)).expect("load sharded db");
    assert_eq!(loaded.shard_count(), 3, "manifest shard count wins");
    assert_eq!(db.stats().clips, loaded.stats().clips);
    assert_eq!(db.stats().objects, loaded.stats().objects);

    for q in trajectories(&db) {
        let (ha, ca) = run(&db, Query::knn(5).trajectory(&q));
        let (hb, cb) = run(&loaded, Query::knn(5).trajectory(&q));
        assert_hits_eq(&ha, &hb, "knn after roundtrip");
        assert!(ca.same_work(&cb), "knn after roundtrip: {ca:?} vs {cb:?}");
    }

    // `open()` on the directory detects the sharded layout.
    let opened = open(&dir, DbOptions::new()).expect("open sharded dir");
    assert_eq!(opened.shard_count(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// `shards(1)` through the `open()` factory persists the plain single-file
/// format, byte-identical to `VideoDatabase::save` — no format fork for
/// the default configuration.
#[test]
fn one_shard_persists_plain_bytes() {
    let base = std::env::temp_dir().join(format!("strg_shard_bytes_{}", std::process::id()));
    let plain_path = base.with_extension("plain.strgdb");
    let one_path = base.with_extension("one.strgdb");
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&one_path);

    let plain = VideoDatabase::new(DbOptions::new());
    ingest_all(&plain);
    plain.save(&plain_path).expect("save plain");

    let one = open(&one_path, DbOptions::new().shards(1)).expect("open shards(1)");
    assert_eq!(one.shard_count(), 1);
    ingest_all(one.as_ref());
    one.save(&one_path).expect("save shards(1)");

    let a = std::fs::read(&plain_path).expect("read plain bytes");
    let b = std::fs::read(&one_path).expect("read shards(1) bytes");
    assert_eq!(a, b, "shards(1) persisted bytes diverge from single-tree");

    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&one_path);
}
