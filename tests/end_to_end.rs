//! End-to-end integration: frames → segmentation → RAG → STRG → tracking →
//! decomposition → clustering → STRG-Index → queries, through the public
//! facade only.

use strg::prelude::*;

fn demo_clip(seed: u64, actors: usize, frames: usize) -> VideoClip {
    VideoClip {
        name: format!("demo{seed}"),
        scene: lab_scene(&ScenarioConfig {
            n_actors: actors,
            frames,
            seed,
            ..Default::default()
        }),
        fps: 30.0,
    }
}

#[test]
fn ingest_extracts_moving_objects() {
    let db = VideoDatabase::new(DbOptions::new());
    let clip = demo_clip(3, 3, 80);
    let report = db.ingest_clip(&clip, 1);
    assert!(
        report.objects >= 2,
        "three walkers scheduled, got {}",
        report.objects
    );
    assert!(
        report.objects <= 8,
        "no rampant over-segmentation: {}",
        report.objects
    );
    assert!(
        report.background_nodes >= 3,
        "room has several background regions"
    );
}

#[test]
fn stored_objects_have_plausible_motion() {
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(&demo_clip(5, 2, 70), 2);
    let stats = db.stats();
    for id in 0..stats.objects as u64 {
        let og = db.og(id).expect("stored");
        assert!(og.duration() >= 3, "objects live for several frames");
        assert!(og.mean_velocity() > 0.3, "objects move");
        // The scripted walkers are horizontal: displacement mostly in x.
        let series = og.centroid_series();
        let dx = (series.last().unwrap().x - series[0].x).abs();
        let dy = (series.last().unwrap().y - series[0].y).abs();
        assert!(dx > dy, "horizontal walk: dx {dx} dy {dy}");
    }
}

#[test]
fn self_query_returns_self_first() {
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(&demo_clip(7, 3, 80), 3);
    let stats = db.stats();
    for id in 0..stats.objects as u64 {
        let og = db.og(id).unwrap();
        let q = og.centroid_series();
        let result = db.query(Query::knn(1).trajectory(&q).with_cost());
        assert_eq!(result.hits[0].og_id, id, "own trajectory is its own 1-NN");
        assert!(result.hits[0].dist < 1e-9);
        // Finding one neighbor among n stored OGs must do real, bounded work.
        let cost = result.cost.expect("with_cost() requested it");
        assert!(cost.distance_calls >= 1);
        assert!(cost.distance_calls + cost.pruned >= stats.objects as u64);
    }
}

#[test]
fn index_is_much_smaller_than_raw_strg() {
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(&demo_clip(9, 2, 100), 4);
    let stats = db.stats();
    // Equation 9 vs 10: the raw STRG repeats the background per frame.
    assert!(
        stats.strg_bytes as f64 / stats.index_bytes as f64 > 3.0,
        "strg {} index {}",
        stats.strg_bytes,
        stats.index_bytes
    );
}

#[test]
fn multiple_clips_are_isolated_per_root() {
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(&demo_clip(11, 2, 60), 1);
    db.ingest_clip(&demo_clip(12, 2, 60), 1);
    let stats = db.stats();
    assert_eq!(stats.clips, 2);
    // Every OG retrieved from a clip-restricted query belongs to that clip.
    let og = db.og(0).unwrap();
    let q = og.centroid_series();
    for hit in db
        .query(Query::knn(10).trajectory(&q).in_clip("demo11"))
        .hits
    {
        assert_eq!(hit.clip, "demo11");
    }
}

#[test]
fn background_matched_query_routes_to_right_scene() {
    // Two visually different scenes in one database; a query segment shot
    // in the traffic scene must route to the traffic root via background
    // matching (Algorithm 3 steps 1-2) even though its own objects differ.
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(
        &VideoClip {
            name: "lab".into(),
            scene: lab_scene(&ScenarioConfig {
                n_actors: 2,
                frames: 60,
                seed: 41,
                ..Default::default()
            }),
            fps: 30.0,
        },
        1,
    );
    db.ingest_clip(
        &VideoClip {
            name: "traffic".into(),
            scene: traffic_scene(&ScenarioConfig {
                n_actors: 2,
                frames: 60,
                seed: 42,
                ..Default::default()
            }),
            fps: 30.0,
        },
        1,
    );
    // Query clip: same traffic scene, different actors/schedule.
    let q_clip = VideoClip {
        name: "traffic-query".into(),
        scene: traffic_scene(&ScenarioConfig {
            n_actors: 1,
            frames: 40,
            seed: 77,
            ..Default::default()
        }),
        fps: 30.0,
    };
    let q_frames = q_clip.render_all(5);
    let q: Vec<Point2> = (0..30).map(|i| Point2::new(6.0 * i as f64, 50.0)).collect();
    let hits = db
        .query(Query::knn(3).trajectory(&q).with_background(&q_frames))
        .hits;
    assert!(!hits.is_empty());
    assert!(
        hits.iter().all(|h| h.clip == "traffic"),
        "background routing must confine the search to the traffic clip: {hits:?}"
    );
}

#[test]
fn queries_across_scene_types_rank_matching_motion_first() {
    let db = VideoDatabase::new(DbOptions::new());
    // One lab clip (slow walkers) + one traffic clip (fast cars).
    db.ingest_clip(
        &VideoClip {
            name: "lab".into(),
            scene: lab_scene(&ScenarioConfig {
                n_actors: 3,
                frames: 80,
                seed: 31,
                ..Default::default()
            }),
            fps: 30.0,
        },
        1,
    );
    db.ingest_clip(
        &VideoClip {
            name: "traffic".into(),
            scene: traffic_scene(&ScenarioConfig {
                n_actors: 3,
                frames: 80,
                // A seed whose coin flips schedule at least one eastbound
                // car in the y = 50 lane the query trajectory drives down.
                seed: 30,
                ..Default::default()
            }),
            fps: 30.0,
        },
        1,
    );
    let stats = db.stats();
    assert!(stats.objects >= 4);

    // A fast left-to-right trajectory in the traffic lane should retrieve a
    // traffic OG first.
    let q: Vec<Point2> = (0..30).map(|i| Point2::new(6.0 * i as f64, 50.0)).collect();
    let hits = db.query(Query::knn(1).trajectory(&q)).hits;
    assert_eq!(
        hits[0].clip, "traffic",
        "traffic query matches traffic clip"
    );
}
