//! Fault-injection suite: malformed, hostile, and half-finished input.
//!
//! Every fault must produce a structured error line or a clean close —
//! never a panic, never a wedged worker, never a hang (all reads in
//! this suite carry a hard timeout). After each fault the server must
//! still answer an honest request.

mod serve_util;

use serve_util::*;
use strg::prelude::*;
use strg::serve::{ServeConfig, MAX_PING_DELAY_MS};

fn boot_small() -> (
    strg::serve::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    boot(
        VideoDatabase::new(DbOptions::new()),
        ServeConfig {
            threads: Threads::Fixed(2),
            max_line_bytes: 1024,
            ..Default::default()
        },
    )
}

/// Expects an `ok:false` line carrying `code`, on the same connection.
fn expect_err(c: &mut Client, line: &str, code: &str) {
    let r = c.send(line);
    assert!(r.starts_with(r#"{"ok":false,"#), "{line:?} -> {r}");
    assert!(
        r.contains(&format!(r#""code":"{code}""#)),
        "{line:?}: wanted code {code:?}, got {r}"
    );
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let (handle, join) = boot_small();
    let mut c = Client::connect(handle.addr());

    // Broken JSON.
    expect_err(&mut c, "{nope", "parse");
    expect_err(&mut c, r#"{"method":"ping""#, "parse");
    expect_err(&mut c, r#"{"method":"ping"} trailing"#, "parse");
    // Valid JSON, invalid request shape.
    expect_err(&mut c, "[1,2,3]", "invalid");
    expect_err(&mut c, "42", "invalid");
    expect_err(&mut c, r#"{"params":{}}"#, "invalid");
    expect_err(&mut c, r#"{"method":7}"#, "invalid");
    expect_err(&mut c, r#"{"method":"ping","id":"seven"}"#, "invalid");
    expect_err(&mut c, r#"{"method":"ping","bogus":1}"#, "invalid");
    // Unknown method; the id is still echoed.
    let r = c.send(r#"{"id":9,"method":"frobnicate"}"#);
    assert!(r.starts_with(r#"{"ok":false,"id":9,"#), "{r}");
    assert!(r.contains(r#""code":"unknown_method""#), "{r}");
    // Bad parameter types and values reach the handler and come back
    // as `invalid`, not as a worker crash.
    expect_err(&mut c, r#"{"method":"query","params":{"k":3}}"#, "invalid");
    expect_err(
        &mut c,
        r#"{"method":"query","params":{"from":"0,0","to":"1,1","k":"three"}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        r#"{"method":"query","params":{"from":"zero","to":"1,1"}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        r#"{"method":"query","params":{"from":"0,0","to":"1,1","k":2,"radius":5}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        r#"{"method":"query","params":{"from":"0,0","to":"1,1","steps":1}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        r#"{"method":"ingest","params":{"name":"x"}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        r#"{"method":"ingest","params":{"name":"x","scene":"mars"}}"#,
        "invalid",
    );
    expect_err(
        &mut c,
        &format!(
            r#"{{"method":"ping","params":{{"delay_ms":{}}}}}"#,
            MAX_PING_DELAY_MS + 1
        ),
        "invalid",
    );
    // Over-deep nesting is a parse error, not a stack overflow.
    let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
    expect_err(&mut c, &deep, "parse");

    // Blank lines are silent keep-alives: no response line for them.
    c.send_raw(b"\n\n  \n");
    let r = c.send(r#"{"id":10,"method":"ping"}"#);
    assert_eq!(r, r#"{"ok":true,"id":10,"result":"pong"}"#);

    call(handle.addr(), r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

#[test]
fn non_utf8_input_is_a_parse_error() {
    let (handle, join) = boot_small();
    let mut c = Client::connect(handle.addr());
    c.send_raw(b"\xff\xfe{\"method\":\"ping\"}\n");
    let r = c.recv().expect("a response line");
    assert!(r.contains(r#""code":"parse""#), "{r}");
    assert!(r.contains("UTF-8"), "{r}");
    // Same connection still answers honest requests.
    let r = c.send(r#"{"id":1,"method":"ping"}"#);
    assert!(r.contains("pong"), "{r}");
    call(handle.addr(), r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_request_errors_once_and_closes() {
    let (handle, join) = boot_small();
    let mut c = Client::connect(handle.addr());
    // 4 KiB of padding against a 1 KiB cap: framing is lost, so the
    // server answers `too_large` once and hangs up.
    let huge = format!(
        r#"{{"method":"ping","params":{{"pad":"{}"}}}}"#,
        "x".repeat(4096)
    );
    let r = c.send(&huge);
    assert!(r.contains(r#""code":"too_large""#), "{r}");
    assert!(c.recv().is_none(), "connection must close after too_large");
    // A fresh connection is unaffected.
    let r = call(handle.addr(), r#"{"id":1,"method":"ping"}"#);
    assert!(r.contains("pong"), "{r}");
    call(handle.addr(), r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}

#[test]
fn mid_request_disconnects_never_wedge_the_server() {
    let (handle, join) = boot_small();
    // Drop connections at every awkward moment: before any byte, after a
    // partial unterminated request, and right after a complete request
    // whose response we never read.
    for i in 0..10 {
        let mut c = Client::connect(handle.addr());
        match i % 3 {
            0 => {}
            1 => c.send_raw(br#"{"method":"que"#),
            _ => c.send_raw(b"{\"method\":\"stats\"}\n"),
        }
        drop(c);
    }
    // All ten sockets dropped; the server still answers promptly on all
    // worker threads.
    let mut c = Client::connect(handle.addr());
    for id in 0..4 {
        let r = c.send(&format!(r#"{{"id":{id},"method":"ping"}}"#));
        assert!(r.contains("pong"), "{r}");
    }
    let r = c.send(r#"{"id":99,"method":"stats"}"#);
    assert!(r.contains(r#""clips":0"#), "{r}");
    call(handle.addr(), r#"{"method":"shutdown"}"#);
    join.join().unwrap().unwrap();
}
