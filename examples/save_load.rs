//! Persistence: build a database, save it to disk (STRGDB v2 segment
//! file), load it back and verify queries agree — the restart story of a
//! production video database. The reload deserializes the built index
//! (no re-clustering), so it reports the `fast` reopen mode.
//!
//! Run with: `cargo run --release --example save_load`

use strg::prelude::*;

fn main() {
    let db = VideoDatabase::new(DbOptions::new());
    db.ingest_clip(
        &VideoClip {
            name: "hallway".into(),
            scene: lab_scene(&ScenarioConfig {
                n_actors: 3,
                frames: 80,
                seed: 12,
                ..Default::default()
            }),
            fps: 30.0,
        },
        1,
    );
    let stats = db.stats();
    println!(
        "built: {} clip(s), {} objects, index {} bytes",
        stats.clips, stats.objects, stats.index_bytes
    );

    let path = std::env::temp_dir().join("strg_example.db");
    db.save(&path).expect("save");
    println!("saved -> {}", path.display());

    let loaded = VideoDatabase::load(&path, DbOptions::new()).expect("load");
    let re = loaded.stats();
    let p = loaded.persist_info();
    println!(
        "loaded: {} clip(s), {} objects (format v{}, reopen {})",
        re.clips,
        re.objects,
        p.format(),
        p.reopen.as_str()
    );
    assert_eq!(re.objects, stats.objects);
    assert_eq!(p.reopen, ReopenMode::Fast);

    // The deserialized index answers identically.
    let q = db.og(0).expect("og 0").centroid_series();
    let a = db.query(Query::knn(3).trajectory(&q)).hits;
    let b = loaded.query(Query::knn(3).trajectory(&q)).hits;
    println!("\nquery agreement after reload:");
    for (x, y) in a.iter().zip(&b) {
        println!(
            "  og #{:<3} dist {:>8.1}  ==  og #{:<3} dist {:>8.1}",
            x.og_id, x.dist, y.og_id, y.dist
        );
        assert_eq!(x.og_id, y.og_id);
    }
    let _ = std::fs::remove_file(&path);
    println!("\nok");
}
