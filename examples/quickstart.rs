//! Quickstart: script a tiny synthetic surveillance clip, ingest it through
//! the full STRG pipeline (segmentation → RAG → STRG → decomposition →
//! clustering → STRG-Index), and answer a k-NN trajectory query.
//!
//! Run with: `cargo run --release --example quickstart`

use strg::prelude::*;

fn main() {
    // A small laboratory scene: three people crossing the room.
    let clip = VideoClip {
        name: "lab-demo".into(),
        scene: lab_scene(&ScenarioConfig {
            n_actors: 3,
            frames: 90,
            seed: 42,
            ..Default::default()
        }),
        fps: 30.0,
    };

    let db = VideoDatabase::new(DbOptions::new());
    let report = db.ingest_clip(&clip, 1);
    println!(
        "ingested {:>3} frames -> {} object graphs, background of {} regions",
        clip.frame_count(),
        report.objects,
        report.background_nodes
    );

    let stats = db.stats();
    println!(
        "size: raw STRG {} bytes (Eq 9) vs STRG-Index {} bytes (Eq 10) — {:.1}x smaller",
        stats.strg_bytes,
        stats.index_bytes,
        stats.strg_bytes as f64 / stats.index_bytes.max(1) as f64
    );

    // Query: a left-to-right walk at floor height.
    let query: Vec<Point2> = (0..40).map(|i| Point2::new(4.0 * i as f64, 80.0)).collect();
    println!("\n3 nearest stored objects to a left-to-right walking query:");
    let result = db.query(Query::knn(3).trajectory(&query).with_cost());
    for hit in &result.hits {
        let og = db.og(hit.og_id).expect("stored og");
        println!(
            "  clip {:>9}  og #{:<3} dist {:>8.1}  lifetime {} frames, mean speed {:.1} px/frame",
            hit.clip,
            hit.og_id,
            hit.dist,
            og.duration(),
            og.mean_velocity()
        );
    }
    // Work counts only — elapsed time would make the stdout nondeterministic.
    let cost = result.cost.expect("with_cost() requested it");
    println!(
        "cost: {} distance calls, {} node accesses, {} pruned",
        cost.distance_calls, cost.node_accesses, cost.pruned
    );
}
