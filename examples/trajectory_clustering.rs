//! Trajectory clustering: the Section 4 machinery on the paper's synthetic
//! workload. Generates the 48-pattern data set at two noise levels, runs
//! EM / K-Means / K-Harmonic-Means with EGED, DTW and LCS, reports
//! clustering error rates (Equation 11), and finds the number of clusters
//! with the BIC sweep (§4.2).
//!
//! Run with: `cargo run --release --example trajectory_clustering`

use strg::cluster::Clusterer;
use strg::prelude::*;
use strg::synth::all_patterns;

fn main() {
    // A reduced pattern set keeps the example fast (full sweeps live in
    // the bench harness: `cargo run --release -p strg-bench --bin figures`).
    let patterns: Vec<_> = all_patterns().into_iter().step_by(6).collect();
    let k = patterns.len();
    println!("clustering {k} trajectory patterns, 8 instances each\n");

    for noise in [0.05, 0.25] {
        let ds =
            strg::synth::generate_for_patterns(&patterns, 8, &SynthConfig::with_noise(noise), 1);
        let data = ds.series();
        // Labels must be dense 0..k for the error-rate metric.
        let labels: Vec<u32> = ds
            .items
            .iter()
            .map(|t| patterns.iter().position(|p| p.id == t.label).unwrap() as u32)
            .collect();

        println!("noise {:>2.0}%:", noise * 100.0);
        let em = EmClusterer::new(Eged, EmConfig::new(k).with_seed(3));
        let km = KMeans::new(Eged, HardConfig::new(k).with_seed(3));
        let khm = KHarmonicMeans::new(Eged, HardConfig::new(k).with_seed(3));
        report("EM-EGED ", em.fit(&data), &labels);
        report("KM-EGED ", km.fit(&data), &labels);
        report("KHM-EGED", khm.fit(&data), &labels);
        let em_dtw = EmClusterer::new(Dtw, EmConfig::new(k).with_seed(3));
        let em_lcs = EmClusterer::new(Lcs::new(15.0), EmConfig::new(k).with_seed(3));
        report("EM-DTW  ", em_dtw.fit(&data), &labels);
        report("EM-LCS  ", em_lcs.fit(&data), &labels);
        println!();
    }

    // BIC model selection on a small, well-separated subset.
    let patterns: Vec<_> = all_patterns().into_iter().step_by(12).collect();
    let truth = patterns.len();
    let ds = strg::synth::generate_for_patterns(&patterns, 10, &SynthConfig::with_noise(0.05), 2);
    let (best_k, curve) = bic_sweep(&ds.series(), &Eged, 1..=8, 5);
    println!("BIC sweep over K = 1..8 ({truth} true patterns):");
    for p in &curve {
        let marker = if p.k == best_k { "  <== max" } else { "" };
        println!("  K = {:<2} BIC = {:>12.1}{marker}", p.k, p.bic);
    }
}

fn report(name: &str, c: Clustering<Point2>, labels: &[u32]) {
    let err = clustering_error_rate(&c.assignments, labels, c.k());
    println!(
        "  {name}  error rate {:>5.1}%  ({} iterations)",
        err, c.iterations
    );
}
