//! When is which index the right tool? The 3DR-tree answers
//! spatio-temporal *window* queries ("who was in this region during these
//! frames?"), while the STRG-Index answers *similarity* queries ("which
//! stored objects moved like this?"). This example runs both against the
//! same synthetic trajectories.
//!
//! Run with: `cargo run --release --example window_queries`

use strg::core::StrgIndex;
use strg::graph::BackgroundGraph;
use strg::prelude::*;

fn main() {
    let n = 300;
    let ds = generate_total(n, &SynthConfig::with_noise(0.05), 21);
    let items: Vec<(u64, Vec<Point2>)> = ds
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();

    // 3DR-tree: trajectories anchored at t = 0 frame-by-frame.
    let mut rtree = RTree3::new();
    for (id, s) in &items {
        let pts: Vec<(f64, f64)> = s.iter().map(|p| (p.x, p.y)).collect();
        rtree.insert_trajectory(*id, &pts, 0.0);
    }

    // STRG-Index on the same data.
    let mut cfg = StrgIndexConfig::with_k(24);
    cfg.em_max_iters = 8;
    cfg.em_n_init = 1;
    let mut strg = StrgIndex::new(EgedMetric::<Point2>::new(), cfg);
    strg.add_segment(BackgroundGraph::default(), items.clone());

    // Window query: upper-left quadrant during the first 10 frames.
    let window = Aabb3::new([0.0, 0.0, 0.0], [160.0, 120.0, 10.0]);
    let in_window = rtree.window_ids(&window);
    println!(
        "3DR-tree window query (upper-left quadrant, frames 0-10): {} of {} trajectories",
        in_window.len(),
        n
    );

    // Similarity query: a diagonal crossing.
    let query: Vec<Point2> = (0..30)
        .map(|i| {
            let t = i as f64 / 29.0;
            Point2::new(16.0 + t * 288.0, 16.0 + t * 208.0)
        })
        .collect();
    println!("\nSTRG-Index similarity query (diagonal crossing), top 5:");
    for h in strg.knn(&query, 5) {
        let label = ds.items[h.og_id as usize].label;
        println!(
            "  og #{:<4} pattern {:<2} dist {:>8.1}",
            h.og_id, label, h.dist
        );
    }

    // And the mismatch demonstration: the window tells you *presence*, not
    // *motion* — the trajectories in the window span many patterns.
    let mut patterns: Vec<u32> = in_window
        .iter()
        .map(|&id| ds.items[id as usize].label)
        .collect();
    patterns.sort_unstable();
    patterns.dedup();
    println!(
        "\nthe window's {} trajectories span {} distinct motion patterns — presence != similarity",
        in_window.len(),
        patterns.len()
    );
}
