//! Surveillance retrieval: ingest all four Table-1 style clips (two lab
//! cameras, two traffic cameras) into one database and run content-based
//! trajectory queries across them — the paper's motivating application.
//!
//! Run with: `cargo run --release --example surveillance_search`

use strg::prelude::*;

fn main() {
    let db = VideoDatabase::new(DbOptions::new());

    println!("ingesting the four evaluation clips (this renders + segments every frame)...");
    for clip in table1_clips() {
        let report = db.ingest_clip(&clip, 7);
        println!(
            "  {:<9} {:>4} frames  {:>3} objects  bg {} regions  raw STRG {:>9} B",
            clip.name,
            clip.frame_count(),
            report.objects,
            report.background_nodes,
            report.strg_bytes,
        );
    }

    let stats = db.stats();
    println!(
        "\ndatabase: {} clips, {} objects in {} clusters; index {} B vs raw {} B ({:.1}x smaller)",
        stats.clips,
        stats.objects,
        stats.clusters,
        stats.index_bytes,
        stats.strg_bytes,
        stats.strg_bytes as f64 / stats.index_bytes.max(1) as f64
    );

    // Query 1: eastbound road traffic (left-to-right in the upper lane).
    let eastbound: Vec<Point2> = (0..30).map(|i| Point2::new(6.0 * i as f64, 50.0)).collect();
    report_query(&db, "eastbound vehicle", &eastbound, 5);

    // Query 2: westbound traffic in the lower lane.
    let westbound: Vec<Point2> = (0..30)
        .map(|i| Point2::new(170.0 - 6.0 * i as f64, 72.0))
        .collect();
    report_query(&db, "westbound vehicle", &westbound, 5);

    // Query 3: a person walking through the lab (slower, lower on screen).
    let walker: Vec<Point2> = (0..45).map(|i| Point2::new(3.5 * i as f64, 80.0)).collect();
    report_query(&db, "lab walker", &walker, 5);

    // Query 4: the same walker, but restricted to the Lab1 clip only
    // (Algorithm 3's background-matched search path).
    println!("\nquery 'lab walker' restricted to clip Lab1:");
    for hit in db
        .query(Query::knn(3).trajectory(&walker).in_clip("Lab1"))
        .hits
    {
        println!(
            "    {:<9} og #{:<3} dist {:>9.1}",
            hit.clip, hit.og_id, hit.dist
        );
    }
}

fn report_query(db: &VideoDatabase, label: &str, query: &[Point2], k: usize) {
    println!("\nquery '{label}' — top {k}:");
    let result = db.query(Query::knn(k).trajectory(query).with_cost());
    for hit in &result.hits {
        println!(
            "    {:<9} og #{:<3} dist {:>9.1}",
            hit.clip, hit.og_id, hit.dist
        );
    }
    let cost = result.cost.expect("with_cost() requested it");
    println!(
        "    ({} distance calls, {} node accesses, {} pruned)",
        cost.distance_calls, cost.node_accesses, cost.pruned
    );
}
