//! STRG-Index vs M-tree (the Figure 7 comparison, in miniature): index the
//! same synthetic Object Graphs in both structures — with the same metric
//! EGED — and compare the number of distance computations per k-NN query.
//!
//! Run with: `cargo run --release --example index_vs_mtree`

use strg::core::StrgIndex;
use strg::graph::BackgroundGraph;
use strg::prelude::*;

fn main() {
    let n = 1_200;
    println!("generating {n} synthetic object graphs (48 motion patterns)...");
    let ds = generate_total(n, &SynthConfig::with_noise(0.10), 11);
    let items: Vec<(u64, Vec<Point2>)> = ds
        .series()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();

    // STRG-Index with counted metric EGED.
    let cd = CountingDistance::new(EgedMetric::<Point2>::new());
    let mut cfg = StrgIndexConfig::with_k(48);
    cfg.em_max_iters = 10; // clustering quality saturates early here
    cfg.em_n_init = 1;
    let mut strg_index = StrgIndex::new(cd.clone(), cfg);
    strg_index.add_segment(BackgroundGraph::default(), items.clone());
    let build_calls_strg = cd.count();

    // M-tree baselines under the *same* counted metric.
    let cd_ra = CountingDistance::new(EgedMetric::<Point2>::new());
    let mt_ra = MTree::bulk_insert(cd_ra.clone(), MTreeConfig::random(1), items.clone());
    let build_calls_ra = cd_ra.count();
    let cd_sa = CountingDistance::new(EgedMetric::<Point2>::new());
    let mt_sa = MTree::bulk_insert(cd_sa.clone(), MTreeConfig::sampling(1), items.clone());
    let build_calls_sa = cd_sa.count();

    println!("\nbuild cost (distance computations):");
    println!("  STRG-Index : {build_calls_strg:>9}");
    println!("  MT-RA      : {build_calls_ra:>9}");
    println!("  MT-SA      : {build_calls_sa:>9}");

    // Queries: held-out trajectories.
    let queries = generate_total(20, &SynthConfig::with_noise(0.10), 999);
    println!("\nmean distance computations per k-NN query (20 queries):");
    println!(
        "  {:>4}  {:>12} {:>10} {:>10} {:>12}",
        "k", "STRG-Index", "MT-RA", "MT-SA", "linear scan"
    );
    for k in [5usize, 10, 20, 30] {
        let mut c_strg = 0u64;
        let mut c_ra = 0u64;
        let mut c_sa = 0u64;
        for q in queries.series() {
            cd.reset();
            let _ = strg_index.knn(&q, k);
            c_strg += cd.count();
            cd_ra.reset();
            let _ = mt_ra.knn(&q, k);
            c_ra += cd_ra.count();
            cd_sa.reset();
            let _ = mt_sa.knn(&q, k);
            c_sa += cd_sa.count();
        }
        let m = queries.len() as u64;
        println!(
            "  {:>4}  {:>12} {:>10} {:>10} {:>12}",
            k,
            c_strg / m,
            c_ra / m,
            c_sa / m,
            n
        );
    }

    // Sanity: all three return the same nearest neighbor.
    let q = queries.series()[0].clone();
    let a = strg_index.knn(&q, 1)[0].og_id;
    let b = mt_ra.knn(&q, 1)[0].id;
    let c = mt_sa.knn(&q, 1)[0].id;
    println!("\nnearest neighbor agreement: STRG-Index #{a}, MT-RA #{b}, MT-SA #{c}");
}
